package codegen

import (
	"repro/internal/mir"
	"repro/internal/vx"
)

// regRefs reports the virtual registers read (uses) and written (defs) by a
// MIR instruction. Two-address arithmetic reads and writes its destination.
func regRefs(in *mir.Instr, uses, defs *[]int) {
	addUse := func(r int) {
		if r >= mir.VRegBase {
			*uses = append(*uses, r)
		}
	}
	addDef := func(r int) {
		if r >= mir.VRegBase {
			*defs = append(*defs, r)
		}
	}
	memRefs := func(o mir.Operand) {
		if o.Kind == mir.KindMem {
			if o.Base >= 0 {
				addUse(o.Base)
			}
			if o.Index >= 0 {
				addUse(o.Index)
			}
		}
	}
	memRefs(in.A)
	memRefs(in.B)
	if in.B.Kind == mir.KindReg {
		addUse(in.B.Reg)
	}

	switch in.Op {
	case vx.VCALL:
		for _, r := range in.Regs {
			addUse(r)
		}
		if in.CallRes >= 0 {
			addDef(in.CallRes)
		}
	case vx.VENTRY:
		for _, r := range in.Regs {
			addDef(r)
		}
	case vx.MOVQ, vx.MOVSD, vx.LEAQ, vx.MOVQ2SD, vx.MOVSD2Q,
		vx.SETCC, vx.CVTSI2SD, vx.CVTTSD2SI, vx.SQRTSD, vx.POPQ:
		if in.A.Kind == mir.KindReg {
			addDef(in.A.Reg)
		}
	case vx.ADDQ, vx.SUBQ, vx.IMULQ, vx.IDIVQ, vx.IREMQ, vx.ANDQ, vx.ORQ,
		vx.XORQ, vx.SHLQ, vx.SHRQ, vx.SARQ, vx.NEGQ, vx.NOTQ,
		vx.ADDSD, vx.SUBSD, vx.MULSD, vx.DIVSD, vx.MINSD, vx.MAXSD,
		vx.ANDPD, vx.XORPD:
		if in.A.Kind == mir.KindReg {
			addUse(in.A.Reg)
			addDef(in.A.Reg)
		}
	case vx.CMPQ, vx.TESTQ, vx.UCOMISD, vx.PUSHQ:
		if in.A.Kind == mir.KindReg {
			addUse(in.A.Reg)
		}
	}
}

// liveSets computes per-block live-in/live-out over virtual registers with a
// standard backward dataflow iteration.
func liveSets(f *mir.Fn) (liveIn, liveOut []map[int]bool) {
	n := len(f.Blocks)
	liveIn = make([]map[int]bool, n)
	liveOut = make([]map[int]bool, n)
	gen := make([]map[int]bool, n)  // upward-exposed uses
	kill := make([]map[int]bool, n) // defs
	for i, b := range f.Blocks {
		g, k := map[int]bool{}, map[int]bool{}
		var uses, defs []int
		for _, in := range b.Instrs {
			uses, defs = uses[:0], defs[:0]
			regRefs(in, &uses, &defs)
			for _, u := range uses {
				if !k[u] {
					g[u] = true
				}
			}
			for _, d := range defs {
				k[d] = true
			}
		}
		gen[i], kill[i] = g, k
		liveIn[i], liveOut[i] = map[int]bool{}, map[int]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := liveOut[i]
			for _, s := range b.Succs {
				for v := range liveIn[s] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := liveIn[i]
			for v := range gen[i] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out {
				if !kill[i][v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	return liveIn, liveOut
}
