package codegen_test

import (
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/codegen"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/vm"
)

// genProgram builds a deterministic random program from a seed: a mix of
// integer and FP expression trees over loop-carried state, with
// data-dependent branches and array traffic. Division denominators are
// forced odd (|1) so the golden run never traps; everything else is free.
func genProgram(seed uint64) *ir.Module {
	rng := fault.NewRNG(seed)
	m := ir.NewModule("fuzz")
	m.DeclareHost(ir.HostDecl{Name: "out_i64", Params: []ir.Type{ir.I64}, Ret: ir.I64})
	m.DeclareHost(ir.HostDecl{Name: "out_f64", Params: []ir.Type{ir.F64}, Ret: ir.I64})
	m.AddGlobal(ir.Global{Name: "scratch", Size: 32 * 8})
	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)
	scratch := b.GlobalAddr("scratch")

	// Seed the scratch array.
	b.Loop(b.ConstI(0), b.ConstI(32), b.ConstI(1), func(i *ir.Value) {
		b.Store(b.Add(b.Mul(i, b.ConstI(int64(rng.Intn(97)+1))), b.ConstI(int64(rng.Intn(31)))), b.Index(scratch, i))
	})

	acc := b.NewVar(ir.I64, b.ConstI(int64(rng.Intn(100))))
	facc := b.NewVar(ir.F64, b.ConstF(float64(rng.Intn(16))+0.5))

	// Random integer expression over the loop variable and accumulator.
	var intExpr func(depth int, i *ir.Value) *ir.Value
	intExpr = func(depth int, i *ir.Value) *ir.Value {
		if depth == 0 {
			switch rng.Intn(4) {
			case 0:
				return i
			case 1:
				return acc.Get()
			case 2:
				return b.ConstI(int64(rng.Intn(200) - 100))
			default:
				return b.Load(ir.I64, b.Index(scratch, b.And(i, b.ConstI(31))))
			}
		}
		x := intExpr(depth-1, i)
		y := intExpr(depth-1, i)
		switch rng.Intn(8) {
		case 0:
			return b.Add(x, y)
		case 1:
			return b.Sub(x, y)
		case 2:
			return b.Mul(x, b.And(y, b.ConstI(0xFF)))
		case 3:
			return b.SDiv(x, b.Or(b.And(y, b.ConstI(0xFF)), b.ConstI(1)))
		case 4:
			return b.Xor(x, y)
		case 5:
			return b.And(x, y)
		case 6:
			return b.Shl(x, b.And(y, b.ConstI(7)))
		default:
			return b.AShr(x, b.And(y, b.ConstI(15)))
		}
	}
	var fpExpr func(depth int, i *ir.Value) *ir.Value
	fpExpr = func(depth int, i *ir.Value) *ir.Value {
		if depth == 0 {
			switch rng.Intn(3) {
			case 0:
				return b.SIToFP(i)
			case 1:
				return facc.Get()
			default:
				return b.ConstF(float64(rng.Intn(64)) / 8)
			}
		}
		x := fpExpr(depth-1, i)
		y := fpExpr(depth-1, i)
		switch rng.Intn(6) {
		case 0:
			return b.FAdd(x, y)
		case 1:
			return b.FSub(x, y)
		case 2:
			return b.FMul(x, y)
		case 3:
			return b.FDiv(x, b.FAdd(b.FAbs(y), b.ConstF(1)))
		case 4:
			return b.FMin(x, y)
		default:
			return b.FMax(x, y)
		}
	}

	n := int64(rng.Intn(40) + 10)
	b.Loop(b.ConstI(0), b.ConstI(n), b.ConstI(1), func(i *ir.Value) {
		v := intExpr(2, i)
		cond := b.ICmp(ir.Pred(rng.Intn(6)), v, b.ConstI(int64(rng.Intn(50)))) // EQ..SGE
		b.If(cond, func() {
			acc.Set(b.Add(acc.Get(), v))
			b.Store(acc.Get(), b.Index(scratch, b.And(i, b.ConstI(31))))
		}, func() {
			acc.Set(b.Xor(acc.Get(), v))
		})
		facc.Set(fpExpr(2, i))
	})
	b.Call("out_i64", acc.Get())
	b.Call("out_f64", facc.Get())
	b.Loop(b.ConstI(0), b.ConstI(32), b.ConstI(8), func(i *ir.Value) {
		b.Call("out_i64", b.Load(ir.I64, b.Index(scratch, i)))
	})
	b.Ret(b.ConstI(0))
	return m
}

// TestQuickDifferentialCompile is the property-based backbone: for random
// program seeds, interpreted and compiled execution agree bit-for-bit at
// both optimization levels.
func TestQuickDifferentialCompile(t *testing.T) {
	checked := 0
	err := quick.Check(func(seed uint64) bool {
		m := genProgram(seed)
		if err := ir.Verify(m); err != nil {
			t.Logf("seed %d: verify: %v", seed, err)
			return false
		}
		ip := ir.NewInterp(m)
		code, err := ip.Run("main")
		if err != nil || code != 0 {
			t.Logf("seed %d: interp failed: %v code %d", seed, err, code)
			return false
		}
		want := append([]uint64(nil), ip.Output...)
		for _, lvl := range []opt.Level{opt.O0, opt.O2} {
			m2 := genProgram(seed)
			opt.Optimize(m2, lvl)
			res, err := codegen.Compile(m2)
			if err != nil {
				t.Logf("seed %d: compile O%d: %v", seed, lvl, err)
				return false
			}
			img, err := asm.Assemble(res.Prog, asm.Options{})
			if err != nil {
				t.Logf("seed %d: assemble O%d: %v", seed, lvl, err)
				return false
			}
			mach := vm.New(img)
			bindStd(mach)
			if trap := mach.Run(); trap != vm.TrapNone {
				t.Logf("seed %d: trap O%d: %v %s", seed, lvl, trap, mach.TrapMsg)
				return false
			}
			if len(mach.Output) != len(want) {
				t.Logf("seed %d: O%d output length %d vs %d", seed, lvl, len(mach.Output), len(want))
				return false
			}
			for i := range want {
				if mach.Output[i] != want[i] {
					t.Logf("seed %d: O%d output[%d] %#x vs %#x", seed, lvl, i, mach.Output[i], want[i])
					return false
				}
			}
		}
		checked++
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no programs checked")
	}
}

// TestQuickOptimizerIdempotent: running the O2 pipeline twice must be
// semantically identical to running it once.
func TestQuickOptimizerIdempotent(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		m1 := genProgram(seed)
		opt.OptimizeNoLower(m1, opt.O2)
		ip1 := ir.NewInterp(m1)
		if _, err := ip1.Run("main"); err != nil {
			return false
		}
		m2 := genProgram(seed)
		opt.OptimizeNoLower(m2, opt.O2)
		opt.OptimizeNoLower(m2, opt.O2)
		ip2 := ir.NewInterp(m2)
		if _, err := ip2.Run("main"); err != nil {
			return false
		}
		if len(ip1.Output) != len(ip2.Output) {
			return false
		}
		for i := range ip1.Output {
			if ip1.Output[i] != ip2.Output[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Fatal(err)
	}
}
