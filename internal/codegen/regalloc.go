package codegen

import (
	"sort"

	"repro/internal/mir"
	"repro/internal/vx"
)

// Register pools. R7/R8 and F6/F7 are reserved as spill/expansion scratch
// registers and never allocated; SP and BP are special.
var (
	allocGPR = []vx.Reg{
		vx.R0, vx.R1, vx.R2, vx.R3, vx.R4, vx.R5, vx.R6,
		vx.R9, vx.R10, vx.R11, vx.R12, vx.R13,
	}
	allocFPR = []vx.Reg{
		vx.F0, vx.F1, vx.F2, vx.F3, vx.F4, vx.F5,
		vx.F8, vx.F9, vx.F10, vx.F11, vx.F12, vx.F13, vx.F14, vx.F15,
	}
	scratchGPR = [2]vx.Reg{vx.R7, vx.R8}
	scratchFPR = [2]vx.Reg{vx.F6, vx.F7}
)

func isCalleeSaved(r vx.Reg) bool {
	for _, c := range vx.CalleeSavedGPR {
		if r == c {
			return true
		}
	}
	for _, c := range vx.CalleeSavedFPR {
		if r == c {
			return true
		}
	}
	return false
}

// interval is the conservative single-range live interval of a vreg.
type interval struct {
	vreg       int
	start, end int
	class      mir.RegClass
	// Result of allocation: reg, or spill slot index (>= 0) when reg==NoReg.
	reg  vx.Reg
	slot int
}

// allocation is the result of register allocation for one function.
type allocation struct {
	loc        map[int]*interval // vreg -> placement
	spillSlots int
	usedCallee []vx.Reg
}

// buildIntervals numbers instructions in layout order and derives intervals.
func buildIntervals(f *mir.Fn) (map[int]*interval, []int) {
	liveIn, liveOut := liveSets(f)

	ivs := map[int]*interval{}
	touch := func(v, pos int) *interval {
		iv := ivs[v]
		if iv == nil {
			class := mir.ClassInt
			if idx := v - mir.VRegBase; idx >= 0 && idx < len(f.VRegClasses) {
				class = f.VRegClasses[idx]
			}
			iv = &interval{vreg: v, start: pos, end: pos, class: class, reg: vx.NoReg, slot: -1}
			ivs[v] = iv
			return iv
		}
		if pos < iv.start {
			iv.start = pos
		}
		if pos > iv.end {
			iv.end = pos
		}
		return iv
	}

	pos := 0
	var calls []int
	var uses, defs []int
	for bi, b := range f.Blocks {
		blockStart := pos
		for _, in := range b.Instrs {
			uses, defs = uses[:0], defs[:0]
			regRefs(in, &uses, &defs)
			for _, u := range uses {
				touch(u, pos)
			}
			for _, d := range defs {
				touch(d, pos)
			}
			if in.Op == vx.VCALL {
				calls = append(calls, pos)
			}
			pos++
		}
		blockEnd := pos - 1
		if blockEnd < blockStart {
			blockEnd = blockStart
		}
		// touch only widens the per-vreg interval in the ivs map, so the
		// visit order of the live sets cannot affect the result.
		for v := range liveIn[bi] { //fi:ordered — touch is min/max per vreg; order-free
			touch(v, blockStart)
		}
		for v := range liveOut[bi] { //fi:ordered — touch is min/max per vreg; order-free
			touch(v, blockEnd)
		}
	}
	return ivs, calls
}

// crossesCall reports whether the interval spans any call position.
func crossesCall(iv *interval, calls []int) bool {
	i := sort.SearchInts(calls, iv.start)
	return i < len(calls) && calls[i] < iv.end
}

// linearScan performs Poletto–Sarkar linear-scan allocation with the
// call-clobber refinement: intervals live across a call may only take
// callee-saved registers (or spill). This is the mechanism through which
// LLFI-style instrumentation calls degrade code quality — every value live
// across an injectFault call competes for the five callee-saved GPRs.
func linearScan(f *mir.Fn) *allocation {
	ivs, calls := buildIntervals(f)
	list := make([]*interval, 0, len(ivs))
	for _, iv := range ivs {
		list = append(list, iv)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].start != list[j].start {
			return list[i].start < list[j].start
		}
		return list[i].vreg < list[j].vreg
	})

	res := &allocation{loc: ivs}
	inUse := map[vx.Reg]*interval{}
	var active []*interval
	usedCallee := map[vx.Reg]bool{}

	expire := func(start int) {
		keep := active[:0]
		for _, a := range active {
			if a.end < start {
				delete(inUse, a.reg)
			} else {
				keep = append(keep, a)
			}
		}
		active = keep
	}
	pickFree := func(pool []vx.Reg, wantCallee bool) vx.Reg {
		// Two passes: preferred save class first.
		for pass := 0; pass < 2; pass++ {
			for _, r := range pool {
				if inUse[r] != nil {
					continue
				}
				if pass == 0 && isCalleeSaved(r) != wantCallee {
					continue
				}
				if pass == 1 && wantCallee && !isCalleeSaved(r) {
					// A call-crossing interval must not take caller-saved.
					continue
				}
				return r
			}
		}
		return vx.NoReg
	}

	for _, iv := range list {
		expire(iv.start)
		pool := allocGPR
		if iv.class == mir.ClassFP {
			pool = allocFPR
		}
		needCallee := crossesCall(iv, calls)
		r := pickFree(pool, needCallee)
		if r == vx.NoReg {
			// Spill the current interval.
			iv.slot = res.spillSlots
			res.spillSlots++
			continue
		}
		iv.reg = r
		inUse[r] = iv
		active = append(active, iv)
		if isCalleeSaved(r) {
			usedCallee[r] = true
		}
	}

	for r := range usedCallee {
		res.usedCallee = append(res.usedCallee, r)
	}
	sort.Slice(res.usedCallee, func(i, j int) bool { return res.usedCallee[i] < res.usedCallee[j] })
	return res
}
