package codegen

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/mir"
	"repro/internal/vx"
)

// FnStats records code-quality counters for one compiled function; the
// codegen-interference experiment (paper §3.3.2, Listing 2) reads them.
type FnStats struct {
	Name       string
	Instrs     int
	SpillSlots int
	MemOps     int // instructions with a memory operand
	Calls      int
}

// Result is a compiled program plus per-function statistics.
type Result struct {
	Prog  *mir.Prog
	Stats []FnStats
}

// Compile lowers an IR module to a machine program: instruction selection,
// register allocation, frame lowering, peephole. The input must already be
// optimized/legalized (opt.Optimize runs LowerSelect and SplitCriticalEdges).
func Compile(m *ir.Module) (*Result, error) {
	prog := &mir.Prog{Entry: "main"}
	for _, g := range m.Globals {
		prog.Globals = append(prog.Globals, mir.Global{
			Name: g.Name, Size: g.Size, Init: g.Init, Align: g.Align,
		})
	}
	for _, h := range m.Hosts {
		prog.HostFns = append(prog.HostFns, h.Name)
	}
	res := &Result{Prog: prog}

	for _, f := range m.Funcs {
		mf, spills, err := compileFunc(f)
		if err != nil {
			return nil, fmt.Errorf("codegen: %s: %w", f.Name, err)
		}
		prog.Fns = append(prog.Fns, mf)
		res.Stats = append(res.Stats, statsFor(mf, spills))
	}
	// Whole-program check with symbol resolution: every call target and
	// global reference must be defined. Only possible here — compileFunc
	// sees one function at a time.
	if ir.VerifyEachEnabled() {
		if err := mir.Verify(prog, mir.PostRA); err != nil {
			return nil, &ir.VerifyError{Stage: "codegen", Err: err}
		}
	}
	return res, nil
}

func compileFunc(f *ir.Func) (*mir.Fn, int, error) {
	verify := ir.VerifyEachEnabled()
	s, err := selectFunc(f)
	if err != nil {
		return nil, 0, err
	}
	if verify {
		if verr := mir.VerifyFn(s.mf, mir.PreRA); verr != nil {
			return nil, 0, &ir.VerifyError{Stage: "codegen/isel", Fn: f.Name, Err: verr}
		}
	}
	alloc := linearScan(s.mf)
	rw := &rewriter{f: s.mf, alloc: alloc, allocaSize: s.allocaSize}
	if err := rw.run(); err != nil {
		return nil, 0, err
	}
	lowerFrame(s.mf, s.allocaSize, alloc)
	peephole(s.mf)
	if verify {
		if verr := mir.VerifyFn(s.mf, mir.PostRA); verr != nil {
			return nil, 0, &ir.VerifyError{Stage: "codegen/peephole", Fn: f.Name, Err: verr}
		}
	}
	return s.mf, alloc.spillSlots, nil
}

func statsFor(f *mir.Fn, spills int) FnStats {
	st := FnStats{Name: f.Name, SpillSlots: spills}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			st.Instrs++
			if in.A.Kind == mir.KindMem || in.B.Kind == mir.KindMem {
				st.MemOps++
			}
			if in.Op == vx.CALLQ {
				st.Calls++
			}
		}
	}
	return st
}

// peephole removes artifacts of expansion: self-moves and jumps to the
// lexically next block.
func peephole(f *mir.Fn) {
	for bi, b := range f.Blocks {
		out := b.Instrs[:0]
		for i, in := range b.Instrs {
			// Self-move elimination.
			if (in.Op == vx.MOVQ || in.Op == vx.MOVSD) &&
				in.A.Kind == mir.KindReg && in.B.Kind == mir.KindReg &&
				in.A.Reg == in.B.Reg {
				continue
			}
			// Trailing JMP to the next block falls through.
			if in.Op == vx.JMP && i == len(b.Instrs)-1 && in.A.Target == bi+1 {
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
}
