package codegen

import (
	"repro/internal/mir"
	"repro/internal/vx"
)

// lowerFrame inserts the function prologue and epilogues. These sequences are
// the canonical examples of machine-only instructions (paper §3.3.1): they do
// not exist at the IR level, yet they execute on every call and are injection
// targets for binary- and backend-level tools.
//
// Frame layout (offsets relative to BP):
//
//	[BP]                      saved caller BP
//	[BP-8 .. BP-allocaSize]   allocas
//	[BP-allocaSize-8 ...]     spill slots
//	below SP after SUBQ       pushed callee-saved registers
func lowerFrame(f *mir.Fn, allocaSize int32, alloc *allocation) {
	frame := allocaSize + int32(8*alloc.spillSlots)
	frame = (frame + 15) &^ 15
	f.FrameSize = frame
	f.UsedCallee = alloc.usedCallee

	prologue := []*mir.Instr{
		{Op: vx.PUSHQ, A: mir.PReg(vx.BP)},
		{Op: vx.MOVQ, A: mir.PReg(vx.BP), B: mir.PReg(vx.SP)},
	}
	if frame > 0 {
		prologue = append(prologue, &mir.Instr{Op: vx.SUBQ, A: mir.PReg(vx.SP), B: mir.Imm(int64(frame))})
	}
	for _, r := range alloc.usedCallee {
		prologue = append(prologue, &mir.Instr{Op: vx.PUSHQ, A: mir.PReg(r)})
	}
	entry := f.Blocks[0]
	entry.Instrs = append(prologue, entry.Instrs...)

	// Epilogue: restore callee-saved from their known frame positions (pushed
	// right below the frame area), then tear down the frame.
	var epilogue []*mir.Instr
	for i := len(alloc.usedCallee) - 1; i >= 0; i-- {
		off := frame + int32(8*(i+1))
		epilogue = append(epilogue, &mir.Instr{
			Op: vx.MOVQ, A: mir.PReg(alloc.usedCallee[i]), B: mir.Mem(int(vx.BP), -off),
		})
	}
	epilogue = append(epilogue,
		&mir.Instr{Op: vx.MOVQ, A: mir.PReg(vx.SP), B: mir.PReg(vx.BP)},
		&mir.Instr{Op: vx.POPQ, A: mir.PReg(vx.BP)},
	)

	for _, b := range f.Blocks {
		out := make([]*mir.Instr, 0, len(b.Instrs))
		for _, in := range b.Instrs {
			if in.Op == vx.RET {
				for _, e := range epilogue {
					c := *e
					out = append(out, &c)
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
}

// Note: unlike x64, VX64's PUSHQ/MOVQ operate on any architectural register
// (the register file is uniform 64-bit), so FP callee-saved registers are
// saved and restored by the same prologue/epilogue sequences as GPRs. This is
// a documented ISA simplification; the instruction classes and counts remain
// faithful (stack-class saves on entry, mem-class restores on exit).
