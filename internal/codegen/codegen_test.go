package codegen_test

import (
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/vm"
	"repro/internal/vx"
)

// runBoth executes a module in the reference interpreter and compiled on the
// VM, failing the test unless exit codes and output streams agree exactly.
func runBoth(t *testing.T, m *ir.Module, lvl opt.Level) ([]uint64, *vm.Machine) {
	t.Helper()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify input: %v\n%s", err, m)
	}
	ip := ir.NewInterp(m)
	wantCode, err := ip.Run("main")
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	wantOut := append([]uint64(nil), ip.Output...)

	opt.Optimize(m, lvl)
	res, err := codegen.Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := asm.Assemble(res.Prog, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, res.Prog)
	}
	mach := vm.New(img)
	bindStd(mach)
	if trap := mach.Run(); trap != vm.TrapNone {
		t.Fatalf("vm trap %v: %s\n%s", trap, mach.TrapMsg, asm.Disasm(img))
	}
	if mach.ExitCode != wantCode {
		t.Fatalf("exit code %d, interp %d", mach.ExitCode, wantCode)
	}
	if len(mach.Output) != len(wantOut) {
		t.Fatalf("output len %d, interp %d\nvm:  %v\nint: %v", len(mach.Output), len(wantOut), mach.Output, wantOut)
	}
	for i := range wantOut {
		if mach.Output[i] != wantOut[i] {
			t.Fatalf("output[%d]: vm %#x interp %#x", i, mach.Output[i], wantOut[i])
		}
	}
	return wantOut, mach
}

func bindStd(m *vm.Machine) {
	if m.HostBound("out_i64") || !contains(m.Img.HostFns, "out_i64") {
	} else {
		m.BindHost(vm.HostFn{Name: "out_i64", Fn: func(mm *vm.Machine) {
			mm.Output = append(mm.Output, mm.Regs[vx.R1])
			mm.Regs[vx.R0] = 0
		}})
	}
	if contains(m.Img.HostFns, "out_f64") && !m.HostBound("out_f64") {
		m.BindHost(vm.HostFn{Name: "out_f64", Fn: func(mm *vm.Machine) {
			mm.Output = append(mm.Output, mm.Regs[vx.F0])
			mm.Regs[vx.R0] = 0
		}})
	}
}

func contains(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func declOut(m *ir.Module) {
	m.DeclareHost(ir.HostDecl{Name: "out_i64", Params: []ir.Type{ir.I64}, Ret: ir.I64})
	m.DeclareHost(ir.HostDecl{Name: "out_f64", Params: []ir.Type{ir.F64}, Ret: ir.I64})
}

func TestCompileSumLoop(t *testing.T) {
	for _, lvl := range []opt.Level{opt.O0, opt.O2} {
		m := ir.NewModule("t")
		declOut(m)
		b := ir.NewBuilder(m)
		b.NewFunc("main", ir.I64)
		s := b.NewVar(ir.I64, b.ConstI(0))
		b.Loop(b.ConstI(0), b.ConstI(100), b.ConstI(1), func(i *ir.Value) {
			s.Set(b.Add(s.Get(), b.Mul(i, i)))
		})
		b.Call("out_i64", s.Get())
		b.Ret(b.ConstI(0))
		out, _ := runBoth(t, m, lvl)
		if out[0] != 328350 {
			t.Fatalf("lvl %d: sum = %d", lvl, out[0])
		}
	}
}

func TestCompileCallsAndRecursion(t *testing.T) {
	m := ir.NewModule("t")
	declOut(m)
	b := ir.NewBuilder(m)

	// fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
	b.NewFunc("fib", ir.I64, ir.I64)
	n := b.Param(0)
	thenB := b.NewBlock()
	elseB := b.NewBlock()
	b.CondBr(b.ICmp(ir.SLT, n, b.ConstI(2)), thenB, elseB)
	b.SetInsert(thenB)
	b.Ret(n)
	b.SetInsert(elseB)
	a := b.Call("fib", b.Sub(n, b.ConstI(1)))
	c := b.Call("fib", b.Sub(n, b.ConstI(2)))
	b.Ret(b.Add(a, c))

	b.NewFunc("main", ir.I64)
	b.Call("out_i64", b.Call("fib", b.ConstI(15)))
	b.Ret(b.ConstI(0))

	out, _ := runBoth(t, m, opt.O2)
	if out[0] != 610 {
		t.Fatalf("fib(15) = %d", out[0])
	}
}

func TestCompileFPKernel(t *testing.T) {
	m := ir.NewModule("t")
	declOut(m)
	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)
	acc := b.NewVar(ir.F64, b.ConstF(0))
	b.Loop(b.ConstI(1), b.ConstI(50), b.ConstI(1), func(i *ir.Value) {
		x := b.SIToFP(i)
		term := b.FDiv(b.ConstF(1), b.FMul(x, x))
		acc.Set(b.FAdd(acc.Get(), term))
	})
	b.Call("out_f64", b.FSqrt(acc.Get()))
	b.Ret(b.ConstI(0))
	out, _ := runBoth(t, m, opt.O2)
	got := math.Float64frombits(out[0])
	if math.Abs(got-1.2688) > 0.01 {
		t.Fatalf("partial basel sum sqrt = %v", got)
	}
}

func TestCompileGlobalArraysAndNestedLoops(t *testing.T) {
	m := ir.NewModule("t")
	declOut(m)
	const N = 8
	m.AddGlobal(ir.Global{Name: "mat", Size: N * N * 8})
	m.AddGlobal(ir.Global{Name: "vec", Size: N * 8})
	m.AddGlobal(ir.Global{Name: "res", Size: N * 8})
	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)
	mat := b.GlobalAddr("mat")
	vec := b.GlobalAddr("vec")
	resp := b.GlobalAddr("res")
	nn := b.ConstI(N)
	b.Loop(b.ConstI(0), nn, b.ConstI(1), func(i *ir.Value) {
		b.Store(b.SIToFP(b.Add(i, b.ConstI(1))), b.Index(vec, i))
		b.Loop(b.ConstI(0), nn, b.ConstI(1), func(j *ir.Value) {
			idx := b.Add(b.Mul(i, nn), j)
			v := b.SIToFP(b.Add(b.Mul(i, b.ConstI(3)), j))
			b.Store(v, b.Index(mat, idx))
		})
	})
	// res = mat * vec
	b.Loop(b.ConstI(0), nn, b.ConstI(1), func(i *ir.Value) {
		s := b.NewVar(ir.F64, b.ConstF(0))
		b.Loop(b.ConstI(0), nn, b.ConstI(1), func(j *ir.Value) {
			mij := b.Load(ir.F64, b.Index(mat, b.Add(b.Mul(i, nn), j)))
			vj := b.Load(ir.F64, b.Index(vec, j))
			s.Set(b.FAdd(s.Get(), b.FMul(mij, vj)))
		})
		b.Store(s.Get(), b.Index(resp, i))
	})
	b.Loop(b.ConstI(0), nn, b.ConstI(1), func(i *ir.Value) {
		b.Call("out_f64", b.Load(ir.F64, b.Index(resp, i)))
	})
	b.Ret(b.ConstI(0))
	runBoth(t, m, opt.O2)
}

func TestCompileSelectAndCompares(t *testing.T) {
	m := ir.NewModule("t")
	declOut(m)
	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)
	b.Loop(b.ConstI(-5), b.ConstI(6), b.ConstI(1), func(i *ir.Value) {
		pos := b.ICmp(ir.SGT, i, b.ConstI(0))
		v := b.Select(pos, i, b.Sub(b.ConstI(0), i)) // |i|
		b.Call("out_i64", v)
		// FP compares in all predicates.
		x := b.SIToFP(i)
		for _, p := range []ir.Pred{ir.OEQ, ir.ONE, ir.OLT, ir.OLE, ir.OGT, ir.OGE} {
			c := b.FCmp(p, x, b.ConstF(0))
			b.Call("out_i64", b.Select(c, b.ConstI(1), b.ConstI(0)))
		}
	})
	b.Ret(b.ConstI(0))
	runBoth(t, m, opt.O2)
}

func TestCompileHighRegisterPressure(t *testing.T) {
	// More live values than registers forces spills; results must still agree.
	m := ir.NewModule("t")
	declOut(m)
	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)
	var vals []*ir.Value
	for i := 1; i <= 24; i++ {
		vals = append(vals, b.Mul(b.ConstI(int64(i)), b.ConstI(int64(i+1))))
	}
	// Sum in reverse so everything stays live across the whole sequence.
	sum := b.ConstI(0)
	for i := len(vals) - 1; i >= 0; i-- {
		sum = b.Add(sum, vals[i])
	}
	b.Call("out_i64", sum)

	var fvals []*ir.Value
	for i := 1; i <= 20; i++ {
		fvals = append(fvals, b.FDiv(b.ConstF(1), b.ConstF(float64(i))))
	}
	fsum := b.ConstF(0)
	for i := len(fvals) - 1; i >= 0; i-- {
		fsum = b.FAdd(fsum, fvals[i])
	}
	b.Call("out_f64", fsum)
	b.Ret(b.ConstI(0))
	runBoth(t, m, opt.O0) // O0 keeps all values distinct: maximal pressure
}

func TestCompilePressureAcrossCalls(t *testing.T) {
	// Values live across calls must survive in callee-saved registers or
	// spill slots despite host-call scrambling.
	m := ir.NewModule("t")
	declOut(m)
	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)
	var vals []*ir.Value
	for i := 1; i <= 12; i++ {
		vals = append(vals, b.Mul(b.ConstI(int64(i)), b.ConstI(7)))
	}
	b.Call("out_i64", b.ConstI(0)) // scrambles caller-saved
	sum := b.ConstI(0)
	for _, v := range vals {
		sum = b.Add(sum, v)
	}
	b.Call("out_i64", sum)
	b.Ret(b.ConstI(0))
	out, _ := runBoth(t, m, opt.O0)
	if out[1] != 7*(12*13/2) {
		t.Fatalf("sum across call = %d", out[1])
	}
}

func TestCompileIntDivRem(t *testing.T) {
	m := ir.NewModule("t")
	declOut(m)
	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)
	b.Loop(b.ConstI(1), b.ConstI(20), b.ConstI(1), func(i *ir.Value) {
		b.Call("out_i64", b.SDiv(b.ConstI(1000), i))
		b.Call("out_i64", b.SRem(b.ConstI(1000), i))
		b.Call("out_i64", b.AShr(b.Shl(i, b.ConstI(3)), b.ConstI(1)))
		b.Call("out_i64", b.Xor(b.Or(i, b.ConstI(12)), b.And(i, b.ConstI(10))))
	})
	b.Ret(b.ConstI(0))
	runBoth(t, m, opt.O2)
}

func TestCompileFPSpecials(t *testing.T) {
	m := ir.NewModule("t")
	declOut(m)
	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)
	inf := b.FDiv(b.ConstF(1), b.ConstF(0))
	nan := b.FSub(inf, inf)
	b.Call("out_f64", inf)
	b.Call("out_f64", nan)
	b.Call("out_f64", b.FMin(b.ConstF(3), b.ConstF(-2)))
	b.Call("out_f64", b.FMax(b.ConstF(3), b.ConstF(-2)))
	b.Call("out_f64", b.FAbs(b.ConstF(-12.5)))
	b.Call("out_f64", b.FNeg(b.ConstF(4.25)))
	b.Call("out_i64", b.FPToSI(nan)) // integer indefinite
	b.Call("out_i64", b.FPToSI(b.ConstF(-3.99)))
	b.Ret(b.ConstI(0))
	runBoth(t, m, opt.O0)
}

func TestCompileManyParams(t *testing.T) {
	m := ir.NewModule("t")
	declOut(m)
	b := ir.NewBuilder(m)
	// Mixed 6 int + 6 fp parameters.
	b.NewFunc("mix", ir.F64,
		ir.I64, ir.F64, ir.I64, ir.F64, ir.I64, ir.F64,
		ir.I64, ir.F64, ir.I64, ir.F64, ir.I64, ir.F64)
	acc := b.SIToFP(b.Add(b.Add(b.Param(0), b.Param(2)), b.Add(b.Param(4), b.Add(b.Param(6), b.Add(b.Param(8), b.Param(10))))))
	facc := b.FAdd(b.FAdd(b.Param(1), b.Param(3)), b.FAdd(b.Param(5), b.FAdd(b.Param(7), b.FAdd(b.Param(9), b.Param(11)))))
	b.Ret(b.FAdd(acc, facc))

	b.NewFunc("main", ir.I64)
	r := b.Call("mix",
		b.ConstI(1), b.ConstF(0.5), b.ConstI(2), b.ConstF(0.25), b.ConstI(3), b.ConstF(0.125),
		b.ConstI(4), b.ConstF(10), b.ConstI(5), b.ConstF(20), b.ConstI(6), b.ConstF(40))
	b.Call("out_f64", r)
	b.Ret(b.ConstI(0))
	out, _ := runBoth(t, m, opt.O2)
	if got := math.Float64frombits(out[0]); got != 21+70.875 {
		t.Fatalf("mix = %v", got)
	}
}

func TestCompileStatsShowSpillsUnderPressure(t *testing.T) {
	m := ir.NewModule("t")
	declOut(m)
	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)
	var vals []*ir.Value
	for i := 1; i <= 40; i++ {
		vals = append(vals, b.Mul(b.ConstI(int64(i)), b.ConstI(3)))
	}
	sum := b.ConstI(0)
	for i := len(vals) - 1; i >= 0; i-- {
		sum = b.Add(sum, vals[i])
	}
	b.Call("out_i64", sum)
	b.Ret(b.ConstI(0))
	opt.Optimize(m, opt.O0)
	res, err := codegen.Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if res.Stats[0].SpillSlots == 0 {
		t.Fatalf("expected spills under register pressure, stats: %+v", res.Stats[0])
	}
}
