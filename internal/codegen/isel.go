// Package codegen implements the compiler backend: instruction selection
// from IR to VX64 machine IR, liveness analysis, linear-scan register
// allocation with spilling and call-clobber awareness, frame lowering
// (prologue/epilogue and callee-saved handling), and a peephole cleanup.
// The backend is where the machine-only instructions the paper cares about
// come from — prologues, epilogues, register spills/reloads and stack
// traffic all materialize here, invisible to any IR-level fault injector.
package codegen

import (
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/mir"
	"repro/internal/vx"
)

// iselState carries per-function selection state.
type iselState struct {
	f  *ir.Func
	mf *mir.Fn

	vregOf   map[*ir.Value]int
	uses     map[*ir.Value]int
	fused    map[*ir.Value]bool // compares fused into branches
	foldOnly map[*ir.Value]bool // GEPs folded into every use
	blockIdx map[*ir.Block]int

	allocaOff  map[*ir.Value]int32
	allocaSize int32

	cur *mir.Block
}

// selectFunc lowers one IR function to MIR with virtual registers. It
// returns the selection state so the driver can read frame facts.
func selectFunc(f *ir.Func) (*iselState, error) {
	s := &iselState{
		f:         f,
		mf:        &mir.Fn{Name: f.Name},
		vregOf:    map[*ir.Value]int{},
		uses:      map[*ir.Value]int{},
		fused:     map[*ir.Value]bool{},
		foldOnly:  map[*ir.Value]bool{},
		blockIdx:  map[*ir.Block]int{},
		allocaOff: map[*ir.Value]int32{},
	}
	s.analyze()

	for _, b := range f.Blocks {
		s.blockIdx[b] = len(s.mf.Blocks)
		s.mf.NewBlock()
	}
	for _, b := range f.Blocks {
		s.cur = s.mf.Blocks[s.blockIdx[b]]
		if b == f.Entry() {
			s.emitEntry()
		}
		for _, v := range b.Values {
			if err := s.selectValue(v); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", f.Name, v.LongString(), err)
			}
		}
	}
	s.insertPhiCopies()
	return s, nil
}

// analyze computes use counts and fold/fuse decisions.
func (s *iselState) analyze() {
	for _, b := range s.f.Blocks {
		for _, v := range b.Values {
			for _, a := range v.Args {
				s.uses[a]++
			}
		}
	}
	for _, b := range s.f.Blocks {
		for _, v := range b.Values {
			switch v.Op {
			case ir.OpICmp, ir.OpFCmp:
				// A compare used only by a conditional branch is emitted at
				// the branch (flags do not survive arbitrary code in between).
				if s.uses[v] == 1 {
					for _, bb := range s.f.Blocks {
						t := bb.Term()
						if t != nil && t.Op == ir.OpCondBr && t.Args[0] == v {
							s.fused[v] = true
						}
					}
				}
			case ir.OpGEP:
				// A GEP whose every use is a load/store address folds into
				// addressing modes and needs no materialization.
				fold := true
				for _, bb := range s.f.Blocks {
					for _, u := range bb.Values {
						for i, a := range u.Args {
							if a != v {
								continue
							}
							ok := (u.Op == ir.OpLoad && i == 0) || (u.Op == ir.OpStore && i == 1)
							if !ok {
								fold = false
							}
						}
					}
				}
				if fold && foldableScale(v.Scale) {
					s.foldOnly[v] = true
				}
			}
		}
	}
}

func foldableScale(s int64) bool { return s == 1 || s == 2 || s == 4 || s == 8 }

// vclass returns the register class for an IR type.
func vclass(t ir.Type) mir.RegClass {
	if t == ir.F64 {
		return mir.ClassFP
	}
	return mir.ClassInt
}

// newVReg allocates a fresh virtual register of the given class.
func (s *iselState) newVReg(c mir.RegClass) int {
	id := mir.VRegBase + s.mf.NumVRegs
	s.mf.NumVRegs++
	s.mf.VRegClasses = append(s.mf.VRegClasses, c)
	return id
}

// vreg returns (allocating on first touch) the virtual register of v.
func (s *iselState) vreg(v *ir.Value) int {
	if r, ok := s.vregOf[v]; ok {
		return r
	}
	r := s.newVReg(vclass(v.Type))
	s.vregOf[v] = r
	return r
}

func (s *iselState) emit(in *mir.Instr) *mir.Instr {
	if in.CallRes == 0 {
		in.CallRes = -1
	}
	return s.cur.Emit(in)
}

// emitEntry defines parameter vregs via the VENTRY pseudo.
func (s *iselState) emitEntry() {
	if len(s.f.Params) == 0 {
		return
	}
	regs := make([]int, len(s.f.Params))
	for i, p := range s.f.Params {
		regs[i] = s.vreg(p)
	}
	s.emit(&mir.Instr{Op: vx.VENTRY, Regs: regs, CallRes: -1})
}

// operand returns a source operand for an IR value: an immediate for
// constants, the virtual register otherwise.
func (s *iselState) operand(v *ir.Value) mir.Operand {
	switch v.Op {
	case ir.OpConstI:
		return mir.Imm(v.AuxInt)
	case ir.OpConstF:
		return mir.FImm(v.AuxF)
	}
	return mir.Reg(s.vreg(v))
}

// regOperand forces the value into a register operand.
func (s *iselState) regOperand(v *ir.Value) mir.Operand {
	switch v.Op {
	case ir.OpConstI:
		t := s.newVReg(mir.ClassInt)
		s.emit(&mir.Instr{Op: vx.MOVQ, A: mir.Reg(t), B: mir.Imm(v.AuxInt)})
		return mir.Reg(t)
	case ir.OpConstF:
		t := s.newVReg(mir.ClassFP)
		s.emit(&mir.Instr{Op: vx.MOVSD, A: mir.Reg(t), B: mir.FImm(v.AuxF)})
		return mir.Reg(t)
	}
	return mir.Reg(s.vreg(v))
}

// memFor builds a memory operand addressing the pointer value, folding GEP
// shapes and globals into VX64 addressing modes.
func (s *iselState) memFor(ptr *ir.Value) mir.Operand {
	if ptr.Op == ir.OpGEP && foldableScale(ptr.Scale) {
		base, idx := ptr.Args[0], ptr.Args[1]
		disp := ptr.Off
		var op mir.Operand
		if c, ok := constOf(idx); ok {
			disp += c * ptr.Scale
			op = s.baseMem(base, disp)
		} else {
			op = s.baseMem(base, disp)
			op.Index = s.vreg(idx)
			op.Scale = int32(ptr.Scale)
		}
		return op
	}
	if ptr.Op == ir.OpGlobal {
		return mir.MemSym(ptr.Aux, 0)
	}
	if ptr.Op == ir.OpAlloca {
		if off, ok := s.allocaOff[ptr]; ok {
			return mir.Mem(int(vx.BP), -off)
		}
	}
	return mir.Mem(s.vreg(ptr), 0)
}

// baseMem resolves the base part of an address.
func (s *iselState) baseMem(base *ir.Value, disp int64) mir.Operand {
	if disp > math.MaxInt32 || disp < math.MinInt32 {
		// Out-of-range displacement: materialize the address.
		t := s.newVReg(mir.ClassInt)
		s.emit(&mir.Instr{Op: vx.MOVQ, A: mir.Reg(t), B: s.operand(base)})
		s.emit(&mir.Instr{Op: vx.ADDQ, A: mir.Reg(t), B: mir.Imm(disp)})
		return mir.Mem(t, 0)
	}
	if base.Op == ir.OpGlobal {
		return mir.MemSym(base.Aux, int32(disp))
	}
	if base.Op == ir.OpAlloca {
		if off, ok := s.allocaOff[base]; ok {
			return mir.Mem(int(vx.BP), -off+int32(disp))
		}
	}
	return mir.Mem(s.vreg(base), int32(disp))
}

func constOf(v *ir.Value) (int64, bool) {
	if v.Op == ir.OpConstI {
		return v.AuxInt, true
	}
	return 0, false
}

var intALU = map[ir.Op]vx.Op{
	ir.OpAdd: vx.ADDQ, ir.OpSub: vx.SUBQ, ir.OpMul: vx.IMULQ,
	ir.OpSDiv: vx.IDIVQ, ir.OpSRem: vx.IREMQ,
	ir.OpAnd: vx.ANDQ, ir.OpOr: vx.ORQ, ir.OpXor: vx.XORQ,
	ir.OpShl: vx.SHLQ, ir.OpAShr: vx.SARQ,
}

var fpALU = map[ir.Op]vx.Op{
	ir.OpFAdd: vx.ADDSD, ir.OpFSub: vx.SUBSD, ir.OpFMul: vx.MULSD,
	ir.OpFDiv: vx.DIVSD, ir.OpFMin: vx.MINSD, ir.OpFMax: vx.MAXSD,
}

var icmpCond = map[ir.Pred]vx.Cond{
	ir.EQ: vx.CondE, ir.NE: vx.CondNE,
	ir.SLT: vx.CondL, ir.SLE: vx.CondLE, ir.SGT: vx.CondG, ir.SGE: vx.CondGE,
	ir.ULT: vx.CondB, ir.ULE: vx.CondBE, ir.UGT: vx.CondA, ir.UGE: vx.CondAE,
}

// selectValue emits MIR for one IR instruction.
func (s *iselState) selectValue(v *ir.Value) error {
	switch v.Op {
	case ir.OpConstI, ir.OpConstF, ir.OpParam, ir.OpPhi:
		// Constants fold into operands; params come from VENTRY; phis get
		// their copies inserted per edge afterwards. Ensure phis have vregs.
		if v.Op == ir.OpPhi || v.Op == ir.OpParam {
			s.vreg(v)
		}
		return nil

	case ir.OpGlobal:
		if s.uses[v] > 0 && !s.allUsesAreMem(v) {
			s.emit(&mir.Instr{Op: vx.LEAQ, A: mir.Reg(s.vreg(v)), B: mir.Sym(v.Aux)})
		}
		return nil

	case ir.OpAlloca:
		size := (v.AuxInt + 7) &^ 7
		s.allocaSize += int32(size)
		off := s.allocaSize
		s.allocaOff[v] = off
		if !s.allUsesAreMem(v) {
			s.emit(&mir.Instr{Op: vx.LEAQ, A: mir.Reg(s.vreg(v)), B: mir.Mem(int(vx.BP), -off)})
		}
		return nil

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpAShr:
		d := s.vreg(v)
		s.emit(&mir.Instr{Op: vx.MOVQ, A: mir.Reg(d), B: s.operand(v.Args[0])})
		s.emit(&mir.Instr{Op: intALU[v.Op], A: mir.Reg(d), B: s.operand(v.Args[1])})
		return nil

	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFMin, ir.OpFMax:
		d := s.vreg(v)
		s.emit(&mir.Instr{Op: vx.MOVSD, A: mir.Reg(d), B: s.operand(v.Args[0])})
		s.emit(&mir.Instr{Op: fpALU[v.Op], A: mir.Reg(d), B: s.operand(v.Args[1])})
		return nil

	case ir.OpFSqrt:
		s.emit(&mir.Instr{Op: vx.SQRTSD, A: mir.Reg(s.vreg(v)), B: s.regOperand(v.Args[0])})
		return nil

	case ir.OpFAbs:
		d := s.vreg(v)
		s.emit(&mir.Instr{Op: vx.MOVSD, A: mir.Reg(d), B: s.operand(v.Args[0])})
		s.emit(&mir.Instr{Op: vx.ANDPD, A: mir.Reg(d), B: maskImm(^uint64(1 << 63))})
		return nil

	case ir.OpFNeg:
		d := s.vreg(v)
		s.emit(&mir.Instr{Op: vx.MOVSD, A: mir.Reg(d), B: s.operand(v.Args[0])})
		s.emit(&mir.Instr{Op: vx.XORPD, A: mir.Reg(d), B: maskImm(1 << 63)})
		return nil

	case ir.OpSIToFP:
		s.emit(&mir.Instr{Op: vx.CVTSI2SD, A: mir.Reg(s.vreg(v)), B: s.operand(v.Args[0])})
		return nil

	case ir.OpFPToSI:
		s.emit(&mir.Instr{Op: vx.CVTTSD2SI, A: mir.Reg(s.vreg(v)), B: s.regOperand(v.Args[0])})
		return nil

	case ir.OpICmp:
		if s.fused[v] {
			return nil
		}
		s.emit(&mir.Instr{Op: vx.CMPQ, A: s.regOperand(v.Args[0]), B: s.operand(v.Args[1])})
		s.emit(&mir.Instr{Op: vx.SETCC, Cond: icmpCond[v.Pred], A: mir.Reg(s.vreg(v))})
		return nil

	case ir.OpFCmp:
		if s.fused[v] {
			return nil
		}
		cond := s.emitFCmp(v)
		s.emit(&mir.Instr{Op: vx.SETCC, Cond: cond, A: mir.Reg(s.vreg(v))})
		return nil

	case ir.OpLoad:
		op := vx.MOVQ
		if v.Type == ir.F64 {
			op = vx.MOVSD
		}
		s.emit(&mir.Instr{Op: op, A: mir.Reg(s.vreg(v)), B: s.memFor(v.Args[0])})
		return nil

	case ir.OpStore:
		op := vx.MOVQ
		if v.Args[0].Type == ir.F64 {
			op = vx.MOVSD
		}
		s.emit(&mir.Instr{Op: op, A: s.memFor(v.Args[1]), B: s.operand(v.Args[0])})
		return nil

	case ir.OpGEP:
		if s.foldOnly[v] {
			return nil
		}
		d := s.vreg(v)
		if foldableScale(v.Scale) {
			m := s.memFor(v) // reuse the fold logic for LEA
			s.emit(&mir.Instr{Op: vx.LEAQ, A: mir.Reg(d), B: m})
			return nil
		}
		// ptr + idx*scale + off via arithmetic.
		s.emit(&mir.Instr{Op: vx.MOVQ, A: mir.Reg(d), B: s.operand(v.Args[1])})
		s.emit(&mir.Instr{Op: vx.IMULQ, A: mir.Reg(d), B: mir.Imm(v.Scale)})
		s.emit(&mir.Instr{Op: vx.ADDQ, A: mir.Reg(d), B: s.operand(v.Args[0])})
		if v.Off != 0 {
			s.emit(&mir.Instr{Op: vx.ADDQ, A: mir.Reg(d), B: mir.Imm(v.Off)})
		}
		return nil

	case ir.OpCall:
		args := make([]int, 0, len(v.Args))
		for _, a := range v.Args {
			args = append(args, s.regOperand(a).Reg)
		}
		res := -1
		if v.Type != ir.Void && s.uses[v] > 0 {
			res = s.vreg(v)
		}
		nInt, nFP := 0, 0
		for _, a := range v.Args {
			if a.Type == ir.F64 {
				nFP++
			} else {
				nInt++
			}
		}
		s.emit(&mir.Instr{
			Op: vx.VCALL, A: mir.Sym(v.Aux), Regs: args, CallRes: res,
			NIntArgs: nInt, NFPArgs: nFP,
		})
		return nil

	case ir.OpRet:
		if len(v.Args) == 1 {
			rv := v.Args[0]
			if rv.Type == ir.F64 {
				s.emit(&mir.Instr{Op: vx.MOVSD, A: mir.PReg(vx.F0), B: s.operand(rv)})
			} else {
				s.emit(&mir.Instr{Op: vx.MOVQ, A: mir.PReg(vx.R0), B: s.operand(rv)})
			}
		}
		s.emit(&mir.Instr{Op: vx.RET})
		return nil

	case ir.OpBr:
		s.emit(&mir.Instr{Op: vx.JMP, A: mir.Label(s.blockIdx[v.Block.Succs[0]])})
		s.cur.Succs = []int{s.blockIdx[v.Block.Succs[0]]}
		return nil

	case ir.OpCondBr:
		c := v.Args[0]
		then := s.blockIdx[v.Block.Succs[0]]
		els := s.blockIdx[v.Block.Succs[1]]
		var cond vx.Cond
		if s.fused[c] && c.Op == ir.OpICmp {
			s.emit(&mir.Instr{Op: vx.CMPQ, A: s.regOperand(c.Args[0]), B: s.operand(c.Args[1])})
			cond = icmpCond[c.Pred]
		} else if s.fused[c] && c.Op == ir.OpFCmp {
			cond = s.emitFCmp(c)
		} else {
			cr := s.regOperand(c)
			s.emit(&mir.Instr{Op: vx.TESTQ, A: cr, B: cr})
			cond = vx.CondNE
		}
		s.emit(&mir.Instr{Op: vx.JCC, Cond: cond, A: mir.Label(then)})
		s.emit(&mir.Instr{Op: vx.JMP, A: mir.Label(els)})
		s.cur.Succs = []int{then, els}
		return nil

	case ir.OpSelect:
		return fmt.Errorf("select must be lowered before isel")
	}
	return fmt.Errorf("unhandled IR op %s", v.Op)
}

// emitFCmp emits UCOMISD with the x64 operand-order tricks for ordered
// predicates and returns the condition to test.
func (s *iselState) emitFCmp(v *ir.Value) vx.Cond {
	a, b := v.Args[0], v.Args[1]
	switch v.Pred {
	case ir.OEQ:
		s.emit(&mir.Instr{Op: vx.UCOMISD, A: s.regOperand(a), B: s.operand(b)})
		return vx.CondEO
	case ir.ONE:
		s.emit(&mir.Instr{Op: vx.UCOMISD, A: s.regOperand(a), B: s.operand(b)})
		return vx.CondONE
	case ir.OGT:
		s.emit(&mir.Instr{Op: vx.UCOMISD, A: s.regOperand(a), B: s.operand(b)})
		return vx.CondA
	case ir.OGE:
		s.emit(&mir.Instr{Op: vx.UCOMISD, A: s.regOperand(a), B: s.operand(b)})
		return vx.CondAE
	case ir.OLT: // a < b ⇔ b > a
		s.emit(&mir.Instr{Op: vx.UCOMISD, A: s.regOperand(b), B: s.operand(a)})
		return vx.CondA
	case ir.OLE:
		s.emit(&mir.Instr{Op: vx.UCOMISD, A: s.regOperand(b), B: s.operand(a)})
		return vx.CondAE
	}
	panic("codegen: bad fcmp predicate")
}

func maskImm(bits uint64) mir.Operand {
	return mir.FImm(math.Float64frombits(bits))
}

// allUsesAreMem reports whether every use of v is as a foldable memory
// address (so no LEA materialization is needed).
func (s *iselState) allUsesAreMem(v *ir.Value) bool {
	for _, b := range s.f.Blocks {
		for _, u := range b.Values {
			for i, a := range u.Args {
				if a != v {
					continue
				}
				switch {
				case u.Op == ir.OpLoad && i == 0:
				case u.Op == ir.OpStore && i == 1:
				case u.Op == ir.OpGEP && i == 0 && (s.foldOnly[u] || foldableScale(u.Scale)):
					// The GEP folds the base itself.
				default:
					return false
				}
			}
		}
	}
	return true
}

// insertPhiCopies lowers phis: for each edge into a block with phis, a
// parallel-copy group is inserted in the predecessor just before its branch
// instructions. Critical edges were split beforehand, and copies are plain
// moves that do not disturb flags, so placement after the compare is safe.
func (s *iselState) insertPhiCopies() {
	for _, b := range s.f.Blocks {
		var phis []*ir.Value
		for _, v := range b.Values {
			if v.Op != ir.OpPhi {
				break
			}
			phis = append(phis, v)
		}
		if len(phis) == 0 {
			continue
		}
		for pi, p := range b.Preds {
			var moves []move
			for _, phi := range phis {
				src := phi.Args[pi]
				moves = append(moves, move{
					dst:   s.vreg(phi),
					src:   s.operand(src),
					class: vclass(phi.Type),
				})
			}
			seq := s.resolveParallel(moves)
			mb := s.mf.Blocks[s.blockIdx[p]]
			insertBeforeBranch(mb, seq)
		}
	}
}

// move is one pending parallel-copy element.
type move struct {
	dst   int
	src   mir.Operand
	class mir.RegClass
}

// resolveParallel orders a parallel copy, breaking cycles with fresh
// temporaries. Sources that are immediates can never participate in cycles.
func (s *iselState) resolveParallel(moves []move) []*mir.Instr {
	var out []*mir.Instr
	mov := func(c mir.RegClass) vx.Op {
		if c == mir.ClassFP {
			return vx.MOVSD
		}
		return vx.MOVQ
	}
	pending := append([]move(nil), moves...)
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); i++ {
			m := pending[i]
			// Safe to emit if no other pending move reads m.dst.
			blocked := false
			for j, o := range pending {
				if j != i && o.src.Kind == mir.KindReg && o.src.Reg == m.dst {
					blocked = true
					break
				}
			}
			if m.src.Kind == mir.KindReg && m.src.Reg == m.dst {
				// Self-move: drop.
				pending = append(pending[:i], pending[i+1:]...)
				i--
				progress = true
				continue
			}
			if !blocked {
				out = append(out, &mir.Instr{Op: mov(m.class), A: mir.Reg(m.dst), B: m.src})
				pending = append(pending[:i], pending[i+1:]...)
				i--
				progress = true
			}
		}
		if !progress {
			// Cycle: save the about-to-be-clobbered destination of one move
			// into a fresh temp and redirect its readers there.
			m := pending[0]
			t := s.newVReg(m.class)
			out = append(out, &mir.Instr{Op: mov(m.class), A: mir.Reg(t), B: mir.Reg(m.dst)})
			for j := range pending {
				if pending[j].src.Kind == mir.KindReg && pending[j].src.Reg == m.dst {
					pending[j].src = mir.Reg(t)
				}
			}
		}
	}
	return out
}

// insertBeforeBranch splices instrs before the trailing branch group
// (JMP / JCC, and the compare feeding it stays put since moves preserve
// flags).
func insertBeforeBranch(b *mir.Block, instrs []*mir.Instr) {
	if len(instrs) == 0 {
		return
	}
	pos := len(b.Instrs)
	for pos > 0 {
		op := b.Instrs[pos-1].Op
		if op == vx.JMP || op == vx.JCC {
			pos--
			continue
		}
		break
	}
	nb := make([]*mir.Instr, 0, len(b.Instrs)+len(instrs))
	nb = append(nb, b.Instrs[:pos]...)
	nb = append(nb, instrs...)
	nb = append(nb, b.Instrs[pos:]...)
	b.Instrs = nb
}
