// Package backoff provides bounded retry with exponential backoff and
// jitter for the harness's own fallible operations: worker spawn, disk-cache
// I/O, journal writes. The budgets are deliberately small and explicit — a
// deterministically failing operation must surface as an error (or a
// HarnessFault outcome, at the campaign layer) after a handful of attempts,
// never loop forever. Jitter only perturbs *timing*, never results, so the
// determinism invariant (bit-identical tables for a fixed seed) is
// unaffected.
package backoff

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Policy bounds a retry loop.
type Policy struct {
	// Attempts is the total number of tries, first included (<= 1 ⇒ no
	// retries).
	Attempts int
	// Base is the delay before the first retry; each subsequent retry
	// doubles it.
	Base time.Duration
	// Max caps the per-retry delay (0 ⇒ uncapped).
	Max time.Duration
	// Jitter is the fraction of each delay drawn uniformly at random in
	// [1-Jitter, 1+Jitter), de-synchronizing retry storms across workers
	// (0 ⇒ none).
	Jitter float64
}

// Default is the harness-wide policy for transient local failures: 4 tries
// over roughly 10+20+40 ms.
func Default() Policy {
	return Policy{Attempts: 4, Base: 10 * time.Millisecond, Max: 250 * time.Millisecond, Jitter: 0.25}
}

// jitterRNG is a private source so backoff never perturbs the global
// math/rand stream (workloads and tests may seed it).
var (
	rngMu sync.Mutex
	rng   = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// Delay returns the backoff delay before retry number retry (0-based).
func (p Policy) Delay(retry int) time.Duration {
	d := p.Base << uint(retry)
	if d <= 0 { // overflow or zero base
		d = p.Base
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 {
		rngMu.Lock()
		f := 1 + p.Jitter*(2*rng.Float64()-1)
		rngMu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// permanent wraps an error that must not be retried.
type permanent struct{ err error }

func (p permanent) Error() string { return p.err.Error() }
func (p permanent) Unwrap() error { return p.err }

// Permanent marks an error as non-retryable: Retry returns it (unwrapped)
// immediately instead of burning the remaining attempts.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanent{err}
}

// Retry runs op up to p.Attempts times, sleeping the policy's backoff
// between tries, until it succeeds, returns a Permanent error, or the
// context is cancelled. The returned error is the last attempt's (wrapped
// Permanent errors are unwrapped); a cancelled context returns ctx.Err().
// A nil ctx behaves like context.Background().
func Retry(ctx context.Context, p Policy, op func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if err = op(); err == nil {
			return nil
		}
		var perm permanent
		if errors.As(err, &perm) {
			return perm.err
		}
		if i == attempts-1 {
			break
		}
		d := p.Delay(i)
		if d <= 0 {
			continue
		}
		if ctx == nil || ctx.Done() == nil {
			time.Sleep(d)
			continue
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	return err
}
