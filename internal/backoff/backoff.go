// Package backoff provides bounded retry with exponential backoff and
// jitter for the harness's own fallible operations: worker spawn, disk-cache
// I/O, journal writes. The budgets are deliberately small and explicit — a
// deterministically failing operation must surface as an error (or a
// HarnessFault outcome, at the campaign layer) after a handful of attempts,
// never loop forever. Jitter only perturbs *timing*, never results, so the
// determinism invariant (bit-identical tables for a fixed seed) is
// unaffected.
package backoff

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"os"
	"time"
)

// Policy bounds a retry loop.
type Policy struct {
	// Attempts is the total number of tries, first included (<= 1 ⇒ no
	// retries).
	Attempts int
	// Base is the delay before the first retry; each subsequent retry
	// doubles it.
	Base time.Duration
	// Max caps the per-retry delay (0 ⇒ uncapped).
	Max time.Duration
	// Jitter scales each delay by a factor in [1-Jitter, 1+Jitter) derived
	// from a per-shard hash, de-synchronizing retry storms across workers
	// while staying reproducible (0 ⇒ none).
	Jitter float64
}

// Default is the harness-wide policy for transient local failures: 4 tries
// over roughly 10+20+40 ms.
func Default() Policy {
	return Policy{Attempts: 4, Base: 10 * time.Millisecond, Max: 250 * time.Millisecond, Jitter: 0.25}
}

// jitterSalt de-synchronizes retry storms across worker processes without
// wall-clock or math/rand seeding: each shard hashes its FI_SHARD_INDEX (set
// by the sharded-campaign driver; empty in single-process runs) into a
// distinct, reproducible phase. Delays are therefore a pure function of
// (shard, retry number) — rerunning a shard replays the identical backoff
// schedule, which keeps harness timing out of the determinism audit entirely.
var jitterSalt = func() uint64 {
	h := fnv.New64a()
	h.Write([]byte("fi-backoff|"))
	h.Write([]byte(os.Getenv("FI_SHARD_INDEX")))
	return h.Sum64()
}()

// jitterFrac maps (jitterSalt, retry) to a uniform value in [0, 1).
func jitterFrac(retry int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], jitterSalt)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(retry))
	h.Write(buf[:])
	// Keep the top 53 bits: the largest float64-exact integer range.
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// Delay returns the backoff delay before retry number retry (0-based).
func (p Policy) Delay(retry int) time.Duration {
	d := p.Base << uint(retry)
	if d <= 0 { // overflow or zero base
		d = p.Base
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 {
		f := 1 + p.Jitter*(2*jitterFrac(retry)-1)
		d = time.Duration(float64(d) * f)
	}
	return d
}

// permanent wraps an error that must not be retried.
type permanent struct{ err error }

func (p permanent) Error() string { return p.err.Error() }
func (p permanent) Unwrap() error { return p.err }

// Permanent marks an error as non-retryable: Retry returns it (unwrapped)
// immediately instead of burning the remaining attempts.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanent{err}
}

// Retry runs op up to p.Attempts times, sleeping the policy's backoff
// between tries, until it succeeds, returns a Permanent error, or the
// context is cancelled. The returned error is the last attempt's (wrapped
// Permanent errors are unwrapped); a cancelled context returns ctx.Err().
// A nil ctx behaves like context.Background().
func Retry(ctx context.Context, p Policy, op func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if err = op(); err == nil {
			return nil
		}
		var perm permanent
		if errors.As(err, &perm) {
			return perm.err
		}
		if i == attempts-1 {
			break
		}
		d := p.Delay(i)
		if d <= 0 {
			continue
		}
		if ctx == nil || ctx.Done() == nil {
			time.Sleep(d)
			continue
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	return err
}
