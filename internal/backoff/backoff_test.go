package backoff

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	p := Policy{Attempts: 4, Base: time.Microsecond}
	calls := 0
	err := Retry(nil, p, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on attempt 3", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	p := Policy{Attempts: 3, Base: time.Microsecond}
	calls := 0
	boom := errors.New("boom")
	if err := Retry(nil, p, func() error { calls++; return boom }); !errors.Is(err, boom) {
		t.Fatalf("want the last attempt's error, got %v", err)
	}
	if calls != 3 {
		t.Fatalf("ran %d attempts, want exactly 3", calls)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	p := Policy{Attempts: 10, Base: time.Microsecond}
	calls := 0
	boom := errors.New("fatal")
	err := Retry(nil, p, func() error { calls++; return Permanent(boom) })
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
	// Permanent is unwrapped on return: callers match the original error.
	if !errors.Is(err, boom) || err.Error() != "fatal" {
		t.Fatalf("got %v, want the unwrapped original", err)
	}
}

func TestPermanentNilIsNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, Default(), func() error { calls++; return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls != 0 {
		t.Fatalf("op ran %d times under a pre-cancelled context", calls)
	}
}

func TestRetryCancelsMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Attempts: 3, Base: time.Hour} // the sleep must be interrupted
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, p, func() error { return errors.New("x") })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry slept through the cancellation")
	}
}

func TestDelayBoundsAndJitter(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Jitter: 0.25}
	for retry := 0; retry < 8; retry++ {
		d := p.Delay(retry)
		// Exponential, capped at Max, jittered by at most ±25%.
		base := p.Base << uint(retry)
		if base > p.Max {
			base = p.Max
		}
		lo := time.Duration(float64(base) * 0.74)
		hi := time.Duration(float64(base) * 1.26)
		if d < lo || d > hi {
			t.Fatalf("Delay(%d) = %v outside [%v, %v]", retry, d, lo, hi)
		}
	}
}

func TestDelayOverflowFallsBackToBase(t *testing.T) {
	p := Policy{Base: time.Hour}
	if d := p.Delay(62); d != time.Hour { // Base << 62 overflows negative
		t.Fatalf("overflowed delay = %v, want Base", d)
	}
}

func TestZeroAttemptsStillRunsOnce(t *testing.T) {
	calls := 0
	if err := Retry(nil, Policy{}, func() error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want one attempt", err, calls)
	}
}
