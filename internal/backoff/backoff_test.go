package backoff

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	p := Policy{Attempts: 4, Base: time.Microsecond}
	calls := 0
	err := Retry(nil, p, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on attempt 3", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	p := Policy{Attempts: 3, Base: time.Microsecond}
	calls := 0
	boom := errors.New("boom")
	if err := Retry(nil, p, func() error { calls++; return boom }); !errors.Is(err, boom) {
		t.Fatalf("want the last attempt's error, got %v", err)
	}
	if calls != 3 {
		t.Fatalf("ran %d attempts, want exactly 3", calls)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	p := Policy{Attempts: 10, Base: time.Microsecond}
	calls := 0
	boom := errors.New("fatal")
	err := Retry(nil, p, func() error { calls++; return Permanent(boom) })
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
	// Permanent is unwrapped on return: callers match the original error.
	if !errors.Is(err, boom) || err.Error() != "fatal" {
		t.Fatalf("got %v, want the unwrapped original", err)
	}
}

func TestPermanentNilIsNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, Default(), func() error { calls++; return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls != 0 {
		t.Fatalf("op ran %d times under a pre-cancelled context", calls)
	}
}

func TestRetryCancelsMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Attempts: 3, Base: time.Hour} // the sleep must be interrupted
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, p, func() error { return errors.New("x") })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry slept through the cancellation")
	}
}

func TestDelayBoundsAndJitter(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Jitter: 0.25}
	for retry := 0; retry < 8; retry++ {
		d := p.Delay(retry)
		// Exponential, capped at Max, jittered by at most ±25%.
		base := p.Base << uint(retry)
		if base > p.Max {
			base = p.Max
		}
		lo := time.Duration(float64(base) * 0.74)
		hi := time.Duration(float64(base) * 1.26)
		if d < lo || d > hi {
			t.Fatalf("Delay(%d) = %v outside [%v, %v]", retry, d, lo, hi)
		}
	}
}

func TestDelayOverflowFallsBackToBase(t *testing.T) {
	p := Policy{Base: time.Hour}
	if d := p.Delay(62); d != time.Hour { // Base << 62 overflows negative
		t.Fatalf("overflowed delay = %v, want Base", d)
	}
}

func TestZeroAttemptsStillRunsOnce(t *testing.T) {
	calls := 0
	if err := Retry(nil, Policy{}, func() error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want one attempt", err, calls)
	}
}

// TestDelayIsDeterministic pins the hash-based jitter: delays are a pure
// function of (shard salt, retry number) — calling Delay twice for the same
// retry yields the identical duration, and distinct retries actually spread
// (the jitter is not a constant). A time-seeded source would fail the first
// property across processes; a broken hash would fail the second.
func TestDelayIsDeterministic(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Minute, Jitter: 0.25}
	for retry := 0; retry < 8; retry++ {
		d1 := p.Delay(retry)
		d2 := p.Delay(retry)
		if d1 != d2 {
			t.Fatalf("Delay(%d) not deterministic: %v then %v", retry, d1, d2)
		}
	}
	// Spread check on the jitter fractions themselves.
	fracs := map[float64]bool{}
	for retry := 0; retry < 16; retry++ {
		f := jitterFrac(retry)
		if f < 0 || f >= 1 {
			t.Fatalf("jitterFrac(%d) = %v outside [0,1)", retry, f)
		}
		fracs[f] = true
	}
	if len(fracs) < 8 {
		t.Fatalf("jitter fractions collapse: only %d distinct of 16", len(fracs))
	}
}
