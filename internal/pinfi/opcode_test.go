package pinfi_test

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/pinfi"
	"repro/internal/vm"
)

func TestOpcodeTrialRestoresImage(t *testing.T) {
	img := buildImage(t)
	saved := make([]vm.Inst, len(img.Instrs))
	copy(saved, img.Instrs)

	m := newMachine(img)
	targets, _ := pinfi.Profile(m, fault.DefaultConfig(), pinfi.DefaultCosts())
	mt := newMachine(img)
	mt.Budget = m.InstrCount * 10
	rec := pinfi.OpcodeTrial(mt, fault.DefaultConfig(), pinfi.DefaultCosts(), targets/2, pinfi.OpcodeAny, fault.NewRNG(11))
	if rec.Op == "" || !strings.Contains(rec.Op, "->") {
		t.Fatalf("no opcode transition recorded: %+v", rec)
	}
	for i := range saved {
		if img.Instrs[i] != saved[i] {
			t.Fatalf("instruction %d not restored after trial", i)
		}
	}
}

func TestOpcodeValidOnlyNeverIllegal(t *testing.T) {
	img := buildImage(t)
	m := newMachine(img)
	targets, _ := pinfi.Profile(m, fault.DefaultConfig(), pinfi.DefaultCosts())
	budget := m.InstrCount * 10

	for seed := uint64(0); seed < 60; seed++ {
		rng := fault.NewRNG(seed)
		target := rng.Intn(targets)
		mt := newMachine(img)
		mt.Budget = budget
		pinfi.OpcodeTrial(mt, fault.DefaultConfig(), pinfi.DefaultCosts(), target, pinfi.OpcodeValidOnly, rng)
		if mt.Trap == vm.TrapIllegal {
			t.Fatalf("seed %d: valid-only mode raised illegal-instruction trap", seed)
		}
	}
}

func TestOpcodeAnyProducesIllegalSometimes(t *testing.T) {
	img := buildImage(t)
	m := newMachine(img)
	targets, golden := pinfi.Profile(m, fault.DefaultConfig(), pinfi.DefaultCosts())
	budget := m.InstrCount * 10

	outcomes := map[fault.Outcome]int{}
	illegal := 0
	for seed := uint64(0); seed < 150; seed++ {
		rng := fault.NewRNG(seed * 31)
		target := rng.Intn(targets)
		mt := newMachine(img)
		mt.Budget = budget
		pinfi.OpcodeTrial(mt, fault.DefaultConfig(), pinfi.DefaultCosts(), target, pinfi.OpcodeAny, rng)
		outcomes[fault.Classify(mt, golden)]++
		if mt.Trap == vm.TrapIllegal {
			illegal++
		}
	}
	if outcomes[fault.Crash] == 0 {
		t.Fatalf("opcode corruption produced no crashes: %v", outcomes)
	}
	// The §4.5 point: unconstrained opcode faults hit invalid encodings.
	if illegal == 0 {
		t.Fatal("unconstrained mode never produced an invalid encoding")
	}
}

// TestOpcodeModesDiverge quantifies the restriction the paper discusses:
// the valid-only distribution must differ from the unconstrained one
// (invalid encodings always crash; valid-but-wrong opcodes often do not).
func TestOpcodeModesDiverge(t *testing.T) {
	img := buildImage(t)
	m := newMachine(img)
	targets, golden := pinfi.Profile(m, fault.DefaultConfig(), pinfi.DefaultCosts())
	budget := m.InstrCount * 10

	counts := map[pinfi.OpcodeMode]*fault.Counts{
		pinfi.OpcodeAny:       {},
		pinfi.OpcodeValidOnly: {},
	}
	for mode, c := range counts {
		for seed := uint64(0); seed < 120; seed++ {
			rng := fault.NewRNG(seed*977 + 5)
			target := rng.Intn(targets)
			mt := newMachine(img)
			mt.Budget = budget
			pinfi.OpcodeTrial(mt, fault.DefaultConfig(), pinfi.DefaultCosts(), target, mode, rng)
			c.Add(fault.Classify(mt, golden))
		}
	}
	if counts[pinfi.OpcodeAny].Crash <= counts[pinfi.OpcodeValidOnly].Crash {
		t.Fatalf("unconstrained opcode faults should crash more: any=%+v valid=%+v",
			counts[pinfi.OpcodeAny], counts[pinfi.OpcodeValidOnly])
	}
}
