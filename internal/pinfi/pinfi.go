// Package pinfi implements the binary-level comparator: fault injection via
// dynamic binary instrumentation in the style of the PINFI tool the paper
// uses as its accuracy baseline (§5.2). The VM's per-instruction execution
// hook stands in for PIN's instruction-level instrumentation: it observes
// the executed machine instruction stream of the *uninstrumented, optimized*
// binary — the definitive dynamic instruction population.
//
// The package models PIN's costs explicitly (per-instruction analysis
// callback plus one-time JIT translation of the code it executes) and
// implements the paper's performance modification: once the single fault has
// been injected, PINFI removes all instrumentation and detaches (§5.2),
// letting the rest of the run execute at native speed.
package pinfi

import (
	"repro/internal/fault"
	"repro/internal/vm"
)

// CostModel holds the deterministic cycle model for PIN-style dynamic binary
// instrumentation. Only ratios against vx cycle costs matter.
type CostModel struct {
	// PerInstr is the analysis-callback cost charged for every instruction
	// executed while instrumentation is attached.
	PerInstr int64
	// JITPerStaticInstr is the one-time translation cost charged per static
	// instruction of the image (PIN recompiles every trace it touches).
	JITPerStaticInstr int64
}

// DefaultCosts reflects published PIN overheads scaled to the VX64 cycle
// model: a per-instruction analysis trampoline (register save + call into
// the counting routine + restore) costs tens of cycles, and trace
// translation costs tens of cycles per static instruction, amortized over
// the run. With these constants the three tools' modeled campaign times
// land in the paper's measured regime (Figure 5: LLFI ≈ 3.9× PINFI overall,
// REFINE within 0.7–1.8×); the ablation benches expose the sensitivity.
func DefaultCosts() CostModel {
	return CostModel{PerInstr: 55, JITPerStaticInstr: 60}
}

// TargetMap precomputes the per-PC bitmap of the injection population under
// the configuration — the representation the VM's hooked fast loop services
// without closure indirection (vm.CountHook). The population predicate is
// purely static per instruction (class, output registers, owning function),
// so the bitmap is exact; campaigns cache it per binary
// (campaign.Binary.TargetMap) instead of recomputing per trial.
func TargetMap(img *vm.Image, cfg fault.Config) []bool {
	return vm.TargetMap(img, func(in *vm.Inst) bool { return cfg.TargetInst(img, in) })
}

// Profile runs the program once with counting instrumentation attached for
// the whole run (as PINFI's profiling tool does), returning the number of
// dynamic target instructions, the golden output, and the dynamic
// instruction count used for the 10× timeout budget.
func Profile(m *vm.Machine, cfg fault.Config, costs CostModel) (targets int64, golden []uint64) {
	return ProfileMapped(m, TargetMap(m.Img, cfg), costs)
}

// ProfileMapped is Profile over a precomputed target bitmap. The counting
// runs as an inline vm.CountHook on the hooked fast dispatch loop — the
// whole-run instrumentation PINFI's profiling tool attaches no longer costs
// a reference-decoder single-step per instruction.
func ProfileMapped(m *vm.Machine, targets []bool, costs CostModel) (int64, []uint64) {
	m.Reset()
	m.Cycles += costs.JITPerStaticInstr * int64(len(m.Img.Instrs))
	ch := &vm.CountHook{Targets: targets, PerInstr: costs.PerInstr, Arm: -1}
	m.Count = ch
	m.Run()
	m.Count = nil
	return ch.N, append([]uint64(nil), m.Output...)
}

// Trial runs one fault-injection experiment: the counting hook counts target
// instructions, flips one uniformly drawn bit of one uniformly drawn output
// register of the target-index-th dynamic target instruction, then detaches.
// The machine is left halted for outcome classification. Trial resets the
// machine but re-applies the caller-set instruction budget (Reset clears it,
// by the machine-reuse hygiene contract).
func Trial(m *vm.Machine, cfg fault.Config, costs CostModel, target int64, rng *fault.RNG) fault.Record {
	return TrialMapped(m, TargetMap(m.Img, cfg), costs, target, rng)
}

// TrialMapped is Trial over a precomputed target bitmap. The pre-injection
// prefix — the dominant hooked execution of a campaign — runs as an inline
// vm.CountHook; only the single injection point pays a closure call (Fire),
// which flips the bits and detaches (the paper's §5.2 optimization), letting
// the rest of the run execute on the hook-free fast loop.
func TrialMapped(m *vm.Machine, targets []bool, costs CostModel, target int64, rng *fault.RNG) fault.Record {
	budget := m.Budget
	m.Reset()
	m.Budget = budget
	m.Cycles += costs.JITPerStaticInstr * int64(len(m.Img.Instrs))
	var rec fault.Record
	m.Count = &vm.CountHook{
		Targets: targets, PerInstr: costs.PerInstr, Arm: target,
		Fire: func(mm *vm.Machine, pc int32, in *vm.Inst) {
			outs := in.Outs[:in.NOut]
			op, bit := fault.PickOperandAndBit(rng, outs)
			mm.FlipBit(outs[op], bit)
			rec = fault.Record{
				DynIdx: target, PC: pc, Reg: outs[op], Bit: bit, Op: in.Op.String(),
			}
			// The paper's optimization: remove instrumentation and detach
			// once the single fault is injected.
			mm.Count = nil
		},
	}
	m.Run()
	m.Count = nil
	return rec
}
