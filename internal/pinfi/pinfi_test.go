package pinfi_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/codegen"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/pinfi"
	"repro/internal/vm"
	"repro/internal/vx"
)

func buildImage(t *testing.T) *vm.Image {
	t.Helper()
	m := ir.NewModule("t")
	m.DeclareHost(ir.HostDecl{Name: "out_i64", Params: []ir.Type{ir.I64}, Ret: ir.I64})
	b := ir.NewBuilder(m)
	b.NewFunc("main", ir.I64)
	s := b.NewVar(ir.I64, b.ConstI(0))
	b.Loop(b.ConstI(1), b.ConstI(200), b.ConstI(1), func(i *ir.Value) {
		s.Set(b.Add(s.Get(), b.SDiv(b.Mul(i, i), b.Add(i, b.ConstI(1)))))
	})
	b.Call("out_i64", s.Get())
	b.Ret(b.ConstI(0))
	opt.Optimize(m, opt.O2)
	res, err := codegen.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.Assemble(res.Prog, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func newMachine(img *vm.Image) *vm.Machine {
	m := vm.New(img)
	m.BindHost(vm.HostFn{Name: "out_i64", Fn: func(mm *vm.Machine) {
		mm.Output = append(mm.Output, mm.Regs[vx.R1])
		mm.Regs[vx.R0] = 0
	}})
	return m
}

func TestProfileCountsAndGolden(t *testing.T) {
	img := buildImage(t)
	m := newMachine(img)
	targets, golden := pinfi.Profile(m, fault.DefaultConfig(), pinfi.DefaultCosts())
	if targets == 0 {
		t.Fatal("no targets")
	}
	if len(golden) != 1 {
		t.Fatalf("golden length %d", len(golden))
	}
	if m.Trap != vm.TrapNone || m.ExitCode != 0 {
		t.Fatalf("golden run failed")
	}
}

func TestProfileCostsMoreThanNative(t *testing.T) {
	img := buildImage(t)
	m := newMachine(img)
	m.Run()
	native := m.Cycles

	m2 := newMachine(img)
	pinfi.Profile(m2, fault.DefaultConfig(), pinfi.DefaultCosts())
	if m2.Cycles <= native {
		t.Fatalf("instrumented profile (%d cycles) not slower than native (%d)", m2.Cycles, native)
	}
}

func TestTrialInjectsAndDetaches(t *testing.T) {
	img := buildImage(t)
	m := newMachine(img)
	targets, golden := pinfi.Profile(m, fault.DefaultConfig(), pinfi.DefaultCosts())
	budget := m.InstrCount * 10

	outcomes := map[fault.Outcome]int{}
	for target := int64(0); target < targets; target += targets/31 + 1 {
		mt := newMachine(img)
		mt.Budget = budget
		rec := pinfi.Trial(mt, fault.DefaultConfig(), pinfi.DefaultCosts(), target, fault.NewRNG(uint64(target)+5))
		if rec.Op == "" {
			t.Fatalf("target %d: no fault recorded", target)
		}
		if mt.Hook != nil {
			t.Fatal("hook still attached after trial")
		}
		outcomes[fault.Classify(mt, golden)]++
	}
	if len(outcomes) < 2 {
		t.Fatalf("outcome mix degenerate: %v", outcomes)
	}
}

// TestDetachReducesCost verifies the §5.2 optimization: a trial injecting
// early must cost fewer modeled cycles than one injecting late, because
// instrumentation detaches at the injection point.
func TestDetachReducesCost(t *testing.T) {
	img := buildImage(t)
	m := newMachine(img)
	targets, _ := pinfi.Profile(m, fault.DefaultConfig(), pinfi.DefaultCosts())

	early := newMachine(img)
	early.Budget = m.InstrCount * 10
	// Use a seed whose flip is benign-ish; costs still dominated by hook.
	pinfi.Trial(early, fault.DefaultConfig(), pinfi.DefaultCosts(), 0, fault.NewRNG(1))

	late := newMachine(img)
	late.Budget = m.InstrCount * 10
	pinfi.Trial(late, fault.DefaultConfig(), pinfi.DefaultCosts(), targets-1, fault.NewRNG(1))

	if early.Cycles >= late.Cycles {
		t.Fatalf("early-inject trial (%d cycles) not cheaper than late-inject (%d): detach not working",
			early.Cycles, late.Cycles)
	}
}

func TestTrialDeterminism(t *testing.T) {
	img := buildImage(t)
	m := newMachine(img)
	targets, golden := pinfi.Profile(m, fault.DefaultConfig(), pinfi.DefaultCosts())
	target := targets / 2

	m1 := newMachine(img)
	m1.Budget = m.InstrCount * 10
	r1 := pinfi.Trial(m1, fault.DefaultConfig(), pinfi.DefaultCosts(), target, fault.NewRNG(99))
	m2 := newMachine(img)
	m2.Budget = m.InstrCount * 10
	r2 := pinfi.Trial(m2, fault.DefaultConfig(), pinfi.DefaultCosts(), target, fault.NewRNG(99))
	if r1 != r2 || m1.Cycles != m2.Cycles ||
		fault.Classify(m1, golden) != fault.Classify(m2, golden) {
		t.Fatal("identical trials diverged")
	}
}

func TestRecordFieldsPlausible(t *testing.T) {
	img := buildImage(t)
	m := newMachine(img)
	targets, _ := pinfi.Profile(m, fault.DefaultConfig(), pinfi.DefaultCosts())
	mt := newMachine(img)
	mt.Budget = m.InstrCount * 10
	target := targets / 3
	rec := pinfi.Trial(mt, fault.DefaultConfig(), pinfi.DefaultCosts(), target, fault.NewRNG(4))
	if rec.DynIdx != target {
		t.Fatalf("record dyn %d, want %d", rec.DynIdx, target)
	}
	if int(rec.PC) >= len(img.Instrs) {
		t.Fatalf("record pc out of range")
	}
	if rec.Bit >= 64 {
		t.Fatalf("bit %d out of range", rec.Bit)
	}
}
