package pinfi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/fault"
	"repro/internal/vm"
	"repro/internal/vx"
)

// Fire-point index: the per-binary artifact that makes binary-level trials
// hook-free end to end. One hooked golden pass per binary records, for every
// dynamic target-instruction occurrence, the absolute InstrCount at which it
// committed and its PC. A trial then maps "inject at the Nth dynamic target
// occurrence" straight to an absolute instruction index and arms the VM's
// fire-point seam (vm.Machine.ArmFire): the injection deadline rides the
// budget countdown of the hook-free fast loop, so neither the prefix nor the
// suffix of the trial executes a single hooked instruction. The recording
// pass is paid once per binary and amortized over the ~1000-trial campaign
// (and persisted in the campaign disk cache alongside the profile).

// fireAnchorStride is the occurrence interval between sparse decode anchors:
// a Lookup decodes at most this many delta records.
const fireAnchorStride = 64

// FireAnchor snapshots the delta-decoder state immediately before occurrence
// Index k*fireAnchorStride: byte offset into the stream plus the running
// (InstrCount, PC) pair.
type FireAnchor struct {
	Off   int64
	Instr int64
	PC    int32
}

// FirePoints is the compact per-binary fire-point index: one record per
// dynamic target-instruction occurrence of the golden run, delta-encoded
// (uvarint ΔInstrCount — occurrences are in increasing dynamic order — and
// zigzag-varint ΔPC) with sparse anchors for O(stride) random lookup. The
// exported fields cross the campaign disk cache via gob.
type FirePoints struct {
	// N is the number of recorded occurrences — by construction equal to the
	// profile's dynamic target count.
	N int64
	// Stream is the delta-encoded (ΔInstrCount, ΔPC) record stream.
	Stream []byte
	// Anchors holds one FireAnchor per fireAnchorStride occurrences.
	Anchors []FireAnchor

	// Encoder state (append-time only; reconstructed lookups never use it).
	lastInstr int64 //fi:nowire — transient encoder state, not part of the wire format
	lastPC    int32 //fi:nowire — transient encoder state, not part of the wire format
}

// add appends one occurrence. Occurrences must arrive in dynamic execution
// order (InstrCount strictly increasing).
func (f *FirePoints) add(instr int64, pc int32) {
	if f.N%fireAnchorStride == 0 {
		f.Anchors = append(f.Anchors, FireAnchor{
			Off: int64(len(f.Stream)), Instr: f.lastInstr, PC: f.lastPC,
		})
	}
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(instr-f.lastInstr))
	n += binary.PutVarint(buf[n:], int64(pc-f.lastPC))
	f.Stream = append(f.Stream, buf[:n]...)
	f.lastInstr, f.lastPC = instr, pc
	f.N++
}

// Lookup returns the absolute InstrCount and PC of the i-th (0-based)
// dynamic target-instruction occurrence of the golden run. It panics on an
// out-of-range index: trial targets are drawn from [0, Profile.Targets) and
// the index records exactly that many occurrences, so a miss is a harness
// bug, not an input condition.
func (f *FirePoints) Lookup(i int64) (instr int64, pc int32) {
	if i < 0 || i >= f.N {
		panic(fmt.Sprintf("pinfi: fire-point index %d out of range [0,%d)", i, f.N))
	}
	a := f.Anchors[i/fireAnchorStride]
	off, instr, pc := a.Off, a.Instr, a.PC
	for k := i - i%fireAnchorStride; k <= i; k++ {
		di, n := binary.Uvarint(f.Stream[off:])
		off += int64(n)
		dp, n := binary.Varint(f.Stream[off:])
		off += int64(n)
		instr += int64(di)
		pc += int32(dp)
	}
	return instr, pc
}

// RecordFirePoints runs the one hooked golden pass that builds a binary's
// fire-point index: an ExecHook records (InstrCount, PC) at every dynamic
// occurrence of a target instruction. The pass is budget-free — it retraces
// the profiling run, which the campaign has already validated as trap-free —
// and its dynamics are bit-identical to any trial's pre-injection prefix
// (Cycles and Budget never influence the architectural trajectory), so the
// recorded indices are exact for every trial of the campaign.
func RecordFirePoints(m *vm.Machine, targets []bool) (*FirePoints, error) {
	m.Reset()
	fps := &FirePoints{}
	m.Hook = func(mm *vm.Machine, pc int32, in *vm.Inst) {
		if targets[pc] {
			fps.add(mm.InstrCount, pc)
		}
	}
	m.Run()
	m.Hook = nil
	if m.Trap != vm.TrapNone {
		return nil, fmt.Errorf("pinfi: fire-point recording trapped: %s", m.TrapMsg)
	}
	if m.ExitCode != 0 {
		return nil, fmt.Errorf("pinfi: fire-point recording exited %d", m.ExitCode)
	}
	return fps, nil
}

// TrialFired is TrialMapped rewritten over a fire-point index: instead of
// counting target occurrences through a hooked prefix, the trial looks up
// the target's absolute instruction index and arms the VM's fire-point seam.
// The whole trial — prefix, injection, suffix — runs on the hook-free fast
// loop with zero hooked instructions; outcomes, Cycles and the fault record
// are bit-identical to TrialMapped (the deferred PerInstr observer cost is
// settled as a lump sum at the fire, see vm.FirePoint).
func TrialFired(m *vm.Machine, fps *FirePoints, costs CostModel, target int64, rng *fault.RNG) fault.Record {
	budget := m.Budget
	m.Reset()
	m.Budget = budget
	m.Cycles += costs.JITPerStaticInstr * int64(len(m.Img.Instrs))
	at, pc := fps.Lookup(target)
	var rec fault.Record
	m.ArmFire(&vm.FirePoint{
		At: at, PC: pc, PerInstr: costs.PerInstr,
		Fn: func(mm *vm.Machine, pc int32, in *vm.Inst) {
			outs := in.Outs[:in.NOut]
			op, bit := fault.PickOperandAndBit(rng, outs)
			mm.FlipBit(outs[op], bit)
			rec = fault.Record{
				DynIdx: target, PC: pc, Reg: outs[op], Bit: bit, Op: in.Op.String(),
			}
		},
	})
	m.Run()
	return rec
}

// OpcodeTrialFired is OpcodeTrialMapped over a fire-point index: the opcode
// corruption fires at the looked-up absolute instruction index on the
// hook-free fast loop (Repredecode rewrites the predecoded stream in place,
// so the running loop executes the corrupted instruction from the next
// dispatch). The image is restored before returning, as in the mapped form.
func OpcodeTrialFired(m *vm.Machine, fps *FirePoints, costs CostModel, target int64, mode OpcodeMode, rng *fault.RNG) fault.Record {
	budget := m.Budget
	m.Reset()
	m.Budget = budget
	m.Cycles += costs.JITPerStaticInstr * int64(len(m.Img.Instrs))
	at, pc := fps.Lookup(target)
	var rec fault.Record
	var corruptedPC int32 = -1
	var savedOp vx.Op
	m.ArmFire(&vm.FirePoint{
		At: at, PC: pc, PerInstr: costs.PerInstr,
		Fn: func(mm *vm.Machine, pc int32, in *vm.Inst) {
			old := in.Op
			bit := uint(rng.Intn(8))
			flipped := vx.Op(uint8(old) ^ uint8(1<<bit))
			if mode == OpcodeValidOnly {
				for !validOpcode(flipped) {
					bit = uint(rng.Intn(8))
					flipped = vx.Op(uint8(old) ^ uint8(1<<bit))
				}
			}
			corruptedPC = pc
			savedOp = old
			mm.Img.Instrs[pc].Op = flipped
			mm.Img.Repredecode(pc)
			rec = fault.Record{DynIdx: target, PC: pc, Bit: bit, Op: old.String() + "->" + flipped.String()}
		},
	})
	m.Run()
	if corruptedPC >= 0 {
		m.Img.Instrs[corruptedPC].Op = savedOp
		m.Img.Repredecode(corruptedPC)
	}
	return rec
}
