package pinfi

import (
	"repro/internal/fault"
	"repro/internal/vm"
	"repro/internal/vx"
)

// OP-code corruption (paper §4.5). The published REFINE can only produce
// *valid* opcodes when a fault hits the instruction encoding, because the
// compiler's emission stage refuses to write an invalid instruction; the
// authors list true opcode corruption as future work, achievable by
// corrupting the instruction bytes in memory at run time. A binary-level
// injector has no such restriction, and this extension implements both
// semantics:
//
//   - OpcodeAny flips a uniformly chosen bit of the target instruction's
//     opcode byte in the loaded image. Out-of-range encodings raise the
//     machine's illegal-instruction trap, exactly like executing a corrupt
//     text page.
//   - OpcodeValidOnly redraws until the flipped opcode is a defined,
//     non-pseudo instruction — the restriction REFINE's compiler-based
//     emission imposes (§4.5).
//
// Corruption is persistent (a flipped bit in the text segment stays
// flipped), matching a memory/in-cache upset rather than a transient
// register fault.
type OpcodeMode uint8

const (
	// OpcodeAny allows invalid encodings (binary-level semantics).
	OpcodeAny OpcodeMode = iota
	// OpcodeValidOnly restricts faults to valid opcodes (compiler-emission
	// semantics, the published REFINE restriction).
	OpcodeValidOnly
)

// OpcodeTrial runs one opcode-corruption experiment: at the target-th
// dynamic target instruction, one bit of that instruction's opcode byte is
// flipped for the remainder of the run. The image is restored before the
// function returns, so trials are independent.
func OpcodeTrial(m *vm.Machine, cfg fault.Config, costs CostModel, target int64, mode OpcodeMode, rng *fault.RNG) fault.Record {
	return OpcodeTrialMapped(m, TargetMap(m.Img, cfg), costs, target, mode, rng)
}

// OpcodeTrialMapped is OpcodeTrial over a precomputed target bitmap: the
// pre-corruption prefix counts through an inline vm.CountHook on the hooked
// fast loop, and the Fire callback corrupts the opcode, repredecodes the
// slot, and detaches. The bitmap is consulted only while the hook is
// attached, so it never observes the corrupted instruction stream.
func OpcodeTrialMapped(m *vm.Machine, targets []bool, costs CostModel, target int64, mode OpcodeMode, rng *fault.RNG) fault.Record {
	budget := m.Budget
	m.Reset()
	m.Budget = budget
	m.Cycles += costs.JITPerStaticInstr * int64(len(m.Img.Instrs))
	var rec fault.Record
	var corruptedPC int32 = -1
	var savedOp vx.Op

	m.Count = &vm.CountHook{
		Targets: targets, PerInstr: costs.PerInstr, Arm: target,
		Fire: func(mm *vm.Machine, pc int32, in *vm.Inst) {
			old := in.Op
			bit := uint(rng.Intn(8))
			flipped := vx.Op(uint8(old) ^ uint8(1<<bit))
			if mode == OpcodeValidOnly {
				for !validOpcode(flipped) {
					bit = uint(rng.Intn(8))
					flipped = vx.Op(uint8(old) ^ uint8(1<<bit))
				}
			}
			corruptedPC = pc
			savedOp = old
			mm.Img.Instrs[pc].Op = flipped
			mm.Img.Repredecode(pc)
			rec = fault.Record{DynIdx: target, PC: pc, Bit: bit, Op: old.String() + "->" + flipped.String()}
			mm.Count = nil
		},
	}
	m.Run()
	m.Count = nil
	if corruptedPC >= 0 {
		m.Img.Instrs[corruptedPC].Op = savedOp
		m.Img.Repredecode(corruptedPC)
	}
	return rec
}

// validOpcode reports whether the encoding names a real, emittable
// instruction (pseudo-ops and out-of-range bytes are invalid).
func validOpcode(op vx.Op) bool {
	return op < vx.NumOps && op != vx.VCALL && op != vx.VENTRY
}
