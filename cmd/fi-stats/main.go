// Command fi-stats performs the paper's statistical analyses on campaign
// results: the Table 4 contingency-table example, the Table 5 chi-squared
// tests, sample-size calculations (§5.3), and a side-by-side comparison of
// the published Table 6 numbers against locally measured ones.
//
// With no input file it analyzes the paper's published Table 6 data,
// verifying that the statistical machinery reproduces the published
// conclusions (LLFI significantly different from PINFI on every app; REFINE
// on none).
//
// With -measure it additionally runs a live suite — through the shared
// work-stealing scheduler and, with -cache-dir, the disk-persistent
// build/profile cache — and prints the measured Table 5 next to the
// published verdicts. -sched-workers sizes the executor (0 = GOMAXPROCS,
// < 0 = serial); -shards N instead fans the campaigns across N re-exec'd
// worker processes sharing the -cache-dir; repeated invocations with the
// same -cache-dir skip every build and golden profile. Measured verdicts
// are bit-identical across all execution modes.
//
// Usage:
//
//	fi-stats [-table4] [-table5] [-samplesize] [-margin 0.03] [-ci]
//	         [-measure] [-apps CSV] [-trials 1068] [-seed 1] [-precision 0]
//	         [-sched-workers 0] [-shards 0] [-cache-dir DIR]
//
// -ci adds 95% Wilson confidence-interval columns: a rate table over the
// published Table 6 counts, plus the measured Figure 4 under -measure.
// -precision enables adaptive trial allocation for measured suites (stop
// at a target Wilson-CI half-width instead of a fixed -trials).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workloads"

	// Register the extension injectors so measured suites can reference
	// them, matching fi-campaign's registry.
	_ "repro/internal/multibit"
	_ "repro/internal/opcodefi"
)

func main() {
	shard.MaybeWorker() // re-exec'd shard workers never reach flag parsing
	table4 := flag.Bool("table4", true, "print the Table 4 contingency example")
	table5 := flag.Bool("table5", true, "print Table 5 chi-squared tests on the published data")
	sampleSize := flag.Bool("samplesize", true, "print the Leveugle sample-size table")
	margin := flag.Float64("margin", 0.03, "margin of error for -samplesize")
	ci := flag.Bool("ci", false, "add 95% Wilson confidence-interval columns: a rate table over the published Table 6 counts, and the measured Figure 4 under -measure")
	measure := flag.Bool("measure", false, "run a live suite and print the measured Table 5")
	appsFlag := flag.String("apps", "", "comma-separated app subset for -measure (default: all 14)")
	trials := flag.Int("trials", 1068, "trials per (app, tool) for -measure")
	seed := flag.Uint64("seed", 1, "base RNG seed for -measure")
	schedWorkers := flag.Int("sched-workers", 0, "shared work-stealing executor size for -measure (0 = GOMAXPROCS, < 0 = serial)")
	chunk := flag.Int("chunk", 0, "trial indexes claimed per executor lock acquisition for -measure (0 = adaptive)")
	shards := flag.Int("shards", 0, "fan -measure campaigns across N worker OS processes (this binary re-exec'd); verdicts are bit-identical to in-process runs (0 = in-process)")
	shardWorker := flag.Bool("shard-worker", false, "run as a shard worker: gob job assignments on stdin, trial frames on stdout (what -shards re-execs; normally set via the environment)")
	cacheDir := flag.String("cache-dir", "", "persist -measure builds + profiles under this directory")
	precision := flag.Float64("precision", 0, "adaptive trial allocation for -measure: stop each campaign once every outcome class's 95% Wilson-CI half-width is at or below this margin (0 = fixed -trials)")
	journalDir := flag.String("journal", "", "append every completed -measure trial to a crash-safe journal under this directory; a restarted run replays it and re-executes only missing trials")
	flag.Parse()
	if *shardWorker {
		if err := shard.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "fi-stats:", err)
			os.Exit(1)
		}
		return
	}

	paper := experiments.PaperTable6()
	var apps []string
	for app := range paper {
		apps = append(apps, app)
	}
	sort.Strings(apps)

	if *sampleSize {
		fmt.Printf("Sample size (margin %.0f%%, 95%% confidence):\n", *margin*100)
		for _, pop := range []int64{1000, 10_000, 100_000, 1_000_000, 1 << 40} {
			fmt.Printf("  population %12d -> n = %d\n", pop, stats.SampleSize(pop, *margin, stats.Z95))
		}
		fmt.Printf("The paper's configuration (margin 3%%, huge population): n = %d\n\n",
			stats.SampleSize(1<<40, 0.03, stats.Z95))
	}

	if *table4 {
		l := paper["AMG2013"]["LLFI"]
		p := paper["AMG2013"]["PINFI"]
		fmt.Println("Table 4 (published AMG2013 data):")
		fmt.Printf("%-8s %8s %8s %8s %8s\n", "Tool", "Crash", "SOC", "Benign", "Total")
		fmt.Printf("%-8s %8d %8d %8d %8d\n", "LLFI", l.Crash, l.SOC, l.Benign, l.Total())
		fmt.Printf("%-8s %8d %8d %8d %8d\n", "PINFI", p.Crash, p.SOC, p.Benign, p.Total())
		fmt.Println()
	}

	if *table5 {
		fmt.Println("Table 5 reproduced from the published Table 6 counts:")
		for _, cmp := range []string{"LLFI", "REFINE"} {
			fmt.Printf("\n%s vs PINFI:\n%-10s %10s %10s %6s\n", cmp, "App", "chi2", "p-value", "diff?")
			sig := 0
			for _, app := range apps {
				base := paper[app]["PINFI"]
				c := paper[app][cmp]
				res, err := stats.CompareCounts(app, "PINFI", cmp,
					[3]int64{int64(base.Crash), int64(base.SOC), int64(base.Benign)},
					[3]int64{int64(c.Crash), int64(c.SOC), int64(c.Benign)})
				if err != nil {
					fmt.Fprintln(os.Stderr, "fi-stats:", err)
					os.Exit(1)
				}
				y := "no"
				if res.Significant {
					y = "yes"
					sig++
				}
				fmt.Printf("%-10s %10.3f %10.2e %6s\n", app, res.Stat, res.P, y)
			}
			fmt.Printf("-> %d/%d significantly different\n", sig, len(apps))
		}
	}

	if *ci {
		fmt.Println("\nPublished outcome rates ±95% Wilson CI (from the Table 6 counts):")
		fmt.Printf("%-10s %-8s %22s %22s %22s\n", "App", "Tool", "Crash%", "SOC%", "Benign%")
		for _, app := range apps {
			for _, tool := range []string{"LLFI", "REFINE", "PINFI"} {
				c := paper[app][tool]
				n := c.Total()
				cell := func(k int) string {
					lo, hi := stats.WilsonCI(k, n, stats.Z95)
					return fmt.Sprintf("%5.1f [%5.1f,%5.1f]", 100*float64(k)/float64(n), 100*lo, 100*hi)
				}
				fmt.Printf("%-10s %-8s %22s %22s %22s\n", app, tool, cell(c.Crash), cell(c.SOC), cell(c.Benign))
			}
		}
	}

	if *measure {
		if err := runMeasured(*appsFlag, *trials, *seed, *schedWorkers, *chunk, *shards, *cacheDir, *journalDir, *precision, *ci); err != nil {
			fmt.Fprintln(os.Stderr, "fi-stats:", err)
			os.Exit(1)
		}
	}
}

// runMeasured runs a live suite through the shared scheduler (and the disk
// cache when dir is set) and prints the measured Table 5.
func runMeasured(appsCSV string, trials int, seed uint64, schedWorkers, chunk, shards int, dir, journalDir string, precision float64, ci bool) error {
	cfg := experiments.Config{
		Trials:    trials,
		Seed:      seed,
		Chunk:     chunk,
		Build:     campaign.DefaultBuildOptions(),
		Precision: precision,
	}
	if shards > 0 {
		schedWorkers = -1 // trials run in the workers; no in-process executor
	}
	ex, cache, err := experiments.ResolveExecution(schedWorkers, 0, dir)
	if err != nil {
		return err
	}
	cfg.Sched, cfg.Cache = ex, cache
	var journal *campaign.Journal
	if journalDir != "" {
		if journal, err = campaign.OpenJournal(journalDir); err != nil {
			return err
		}
		defer journal.Close()
		cfg.Journal = journal
	}
	var pool *shard.Pool
	if shards > 0 {
		if pool, err = shard.NewPool(shards); err != nil {
			return err
		}
		defer pool.Close()
		cfg.Pool = pool
	}
	if appsCSV != "" {
		for _, name := range strings.Split(appsCSV, ",") {
			app, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			cfg.Apps = append(cfg.Apps, app)
		}
	}
	suite, err := experiments.RunSuite(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("\nMeasured suite (n=%d per cell):\n", suite.Trials)
	fmt.Println(experiments.CacheStatsLine(cache))
	if cache.Dir() != "" {
		fmt.Println(experiments.ComposeLine(cache))
	}
	if journal != nil {
		fmt.Println(experiments.JournalLine(journal))
	}
	if pool != nil {
		pool.Close() // drain the workers' final cache counters first
		fmt.Println(experiments.ShardLines(pool))
	} else {
		fmt.Println(experiments.ExecutionLine(cfg.Sched, cfg.Chunk))
	}
	if ci {
		fmt.Println(suite.Figure4())
	}
	t5, err := suite.Table5()
	if err != nil {
		return err
	}
	fmt.Println(t5)
	return nil
}
