// Command fi-stats performs the paper's statistical analyses on campaign
// results: the Table 4 contingency-table example, the Table 5 chi-squared
// tests, sample-size calculations (§5.3), and a side-by-side comparison of
// the published Table 6 numbers against locally measured ones.
//
// With no input file it analyzes the paper's published Table 6 data,
// verifying that the statistical machinery reproduces the published
// conclusions (LLFI significantly different from PINFI on every app; REFINE
// on none).
//
// Usage:
//
//	fi-stats [-table4] [-table5] [-samplesize] [-margin 0.03]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	table4 := flag.Bool("table4", true, "print the Table 4 contingency example")
	table5 := flag.Bool("table5", true, "print Table 5 chi-squared tests on the published data")
	sampleSize := flag.Bool("samplesize", true, "print the Leveugle sample-size table")
	margin := flag.Float64("margin", 0.03, "margin of error for -samplesize")
	flag.Parse()

	paper := experiments.PaperTable6()
	var apps []string
	for app := range paper {
		apps = append(apps, app)
	}
	sort.Strings(apps)

	if *sampleSize {
		fmt.Printf("Sample size (margin %.0f%%, 95%% confidence):\n", *margin*100)
		for _, pop := range []int64{1000, 10_000, 100_000, 1_000_000, 1 << 40} {
			fmt.Printf("  population %12d -> n = %d\n", pop, stats.SampleSize(pop, *margin, stats.Z95))
		}
		fmt.Printf("The paper's configuration (margin 3%%, huge population): n = %d\n\n",
			stats.SampleSize(1<<40, 0.03, stats.Z95))
	}

	if *table4 {
		l := paper["AMG2013"]["LLFI"]
		p := paper["AMG2013"]["PINFI"]
		fmt.Println("Table 4 (published AMG2013 data):")
		fmt.Printf("%-8s %8s %8s %8s %8s\n", "Tool", "Crash", "SOC", "Benign", "Total")
		fmt.Printf("%-8s %8d %8d %8d %8d\n", "LLFI", l.Crash, l.SOC, l.Benign, l.Total())
		fmt.Printf("%-8s %8d %8d %8d %8d\n", "PINFI", p.Crash, p.SOC, p.Benign, p.Total())
		fmt.Println()
	}

	if *table5 {
		fmt.Println("Table 5 reproduced from the published Table 6 counts:")
		for _, cmp := range []string{"LLFI", "REFINE"} {
			fmt.Printf("\n%s vs PINFI:\n%-10s %10s %10s %6s\n", cmp, "App", "chi2", "p-value", "diff?")
			sig := 0
			for _, app := range apps {
				base := paper[app]["PINFI"]
				c := paper[app][cmp]
				res, err := stats.CompareCounts(app, "PINFI", cmp,
					[3]int64{int64(base.Crash), int64(base.SOC), int64(base.Benign)},
					[3]int64{int64(c.Crash), int64(c.SOC), int64(c.Benign)})
				if err != nil {
					fmt.Fprintln(os.Stderr, "fi-stats:", err)
					os.Exit(1)
				}
				y := "no"
				if res.Significant {
					y = "yes"
					sig++
				}
				fmt.Printf("%-10s %10.3f %10.2e %6s\n", app, res.Stat, res.P, y)
			}
			fmt.Printf("-> %d/%d significantly different\n", sig, len(apps))
		}
	}
}
