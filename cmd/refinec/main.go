// Command refinec is the compiler driver: it builds a benchmark program to a
// VX64 object file, optionally instrumenting it with one of the three fault
// injection pipelines. It mirrors the paper's compiler-flag interface
// (Table 2): -fi enables injection, -fi-funcs and -fi-instrs filter the
// target population.
//
// Usage:
//
//	refinec -app HPCCG [-tool refine|llfi|none|<registry name>] [-o out.vxo]
//	        [-fi-funcs '*'] [-fi-instrs all] [-O 2] [-S] [-emit-ir]
//
// -S prints the final assembly instead of writing an object; -emit-ir prints
// the optimized IR.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/workloads"

	// Register the multi-bit REFINE variant so -tool refine2 resolves.
	_ "repro/internal/multibit"
)

func main() {
	appName := flag.String("app", "", "benchmark to compile (see -list)")
	list := flag.Bool("list", false, "list available benchmarks")
	tool := flag.String("tool", "none", "instrumentation: refine, llfi, or none")
	out := flag.String("o", "", "output object file (default <app>.<tool>.vxo)")
	fiFuncs := flag.String("fi-funcs", "*", "comma-separated function filter")
	fiInstrs := flag.String("fi-instrs", "all", "instruction class filter")
	optLevel := flag.Int("O", 2, "optimization level (0 or 2)")
	emitAsm := flag.Bool("S", false, "print final assembly to stdout")
	emitIR := flag.Bool("emit-ir", false, "print optimized IR to stdout")
	verifyIR := flag.Bool("verify-ir", true,
		"verify IR between optimization passes and MIR at backend checkpoints")
	flag.Parse()

	ir.SetVerifyEach(*verifyIR)

	if *list {
		fmt.Println(strings.Join(workloads.Names(), "\n"))
		return
	}
	app, err := workloads.ByName(*appName)
	if err != nil {
		fatal(err)
	}

	o := campaign.DefaultBuildOptions()
	if *optLevel == 0 {
		o.Opt = opt.O0
	}
	classes, err := fault.ParseClasses(*fiInstrs)
	if err != nil {
		fatal(err)
	}
	o.FI.Classes = classes
	if *fiFuncs != "*" && *fiFuncs != "" {
		o.FI.Funcs = strings.Split(*fiFuncs, ",")
	}

	// Resolve the instrumentation pipeline through the injector registry;
	// "none" builds the plain binary (PINFI's pipeline instruments nothing).
	// Exact registry names win; the historical lowercase spellings
	// ("refine", "llfi", ...) fall back to an uppercase lookup.
	name := *tool
	if name == "none" {
		name = "PINFI"
	}
	ct, err := campaign.ToolByName(name)
	if err != nil {
		if upper, upperErr := campaign.ToolByName(strings.ToUpper(name)); upperErr == nil {
			ct, err = upper, nil
		}
	}
	if err != nil {
		fatal(err)
	}

	if *emitIR {
		m := app.Build()
		if err := optimizeChecked(m, o.Opt); err != nil {
			fatal(err)
		}
		fmt.Print(m.String())
		return
	}

	bin, err := campaign.BuildBinary(app, ct, o)
	if err != nil {
		fatal(err)
	}
	if *emitAsm {
		fmt.Print(asm.Disasm(bin.Img))
		return
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s.%s.vxo", app.Name, *tool)
	}
	blob := asm.EncodeObject(bin.Img)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d instructions, %d bytes, %d FI sites\n",
		path, len(bin.Img.Instrs), len(blob), bin.Sites)
}

// optimizeChecked runs the optimizer, converting a *ir.VerifyError panic
// (raised when -verify-ir catches a broken pass) into an ordinary error so
// the driver prints one diagnostic line naming the pass.
func optimizeChecked(m *ir.Module, lvl opt.Level) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if verr, ok := r.(*ir.VerifyError); ok {
				err = verr
				return
			}
			panic(r)
		}
	}()
	opt.Optimize(m, lvl)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "refinec:", err)
	os.Exit(1)
}
