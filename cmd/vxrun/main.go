// Command vxrun loads a VX64 object file produced by refinec and executes it
// on the virtual machine, printing the program's output stream, exit status
// and execution statistics. When the object was built with REFINE or LLFI
// instrumentation, -fi-target injects a fault at the given dynamic target
// index (use -profile first to learn the population size).
//
// Usage:
//
//	vxrun prog.vxo [-profile] [-fi-target N] [-seed S] [-budget N]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/llfi"
	"repro/internal/vm"
	"repro/internal/vx"
)

func main() {
	profile := flag.Bool("profile", false, "run in profiling mode (count FI targets)")
	fiTarget := flag.Int64("fi-target", -1, "dynamic target index to inject at (-1 = no injection)")
	seed := flag.Uint64("seed", 1, "RNG seed for operand/bit selection")
	budget := flag.Int64("budget", 0, "instruction budget (0 = unlimited)")
	trace := flag.Int("trace", 0, "dump the last N executed instructions")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: vxrun [flags] prog.vxo"))
	}
	blob, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := asm.DecodeObject(blob)
	if err != nil {
		fatal(err)
	}

	m := vm.New(img)
	m.Budget = *budget
	m.BindHost(vm.HostFn{Name: "out_i64", Fn: func(mm *vm.Machine) {
		fmt.Printf("out: %d\n", int64(mm.Regs[vx.R1]))
		mm.Output = append(mm.Output, mm.Regs[vx.R1])
		mm.Regs[vx.R0] = 0
	}})
	m.BindHost(vm.HostFn{Name: "out_f64", Fn: func(mm *vm.Machine) {
		fmt.Printf("out: %g\n", math.Float64frombits(mm.Regs[vx.F0]))
		mm.Output = append(mm.Output, mm.Regs[vx.F0])
		mm.Regs[vx.R0] = 0
	}})

	// Bind whichever FI runtime the object imports.
	var refProf *core.ProfileLib
	var llfiProf *llfi.ProfileLib
	switch {
	case imports(img, core.HostSelInstr) && (*profile || *fiTarget < 0):
		refProf = &core.ProfileLib{}
		refProf.Bind(m)
	case imports(img, core.HostSelInstr):
		lib := &core.InjectLib{Target: *fiTarget, RNG: fault.NewRNG(*seed)}
		lib.Bind(m)
		defer func() { fmt.Printf("fault: %s\n", lib.Rec) }()
	case imports(img, llfi.HostFaultI64) && (*profile || *fiTarget < 0):
		llfiProf = &llfi.ProfileLib{}
		llfiProf.Bind(m)
	case imports(img, llfi.HostFaultI64):
		lib := &llfi.InjectLib{Target: *fiTarget, RNG: fault.NewRNG(*seed)}
		lib.Bind(m)
		defer func() { fmt.Printf("fault: %s\n", lib.Rec) }()
	}

	var tracer *vm.Tracer
	if *trace > 0 {
		tracer = &vm.Tracer{}
		tracer.Attach(m, *trace)
	}

	trap := m.Run()
	if tracer != nil {
		fmt.Print(tracer.Dump(img))
	}
	fmt.Printf("exit=%d trap=%s instrs=%d cycles=%d\n", m.ExitCode, trap, m.InstrCount, m.Cycles)
	if refProf != nil {
		fmt.Printf("fi-targets: %d\n", refProf.Count)
	}
	if llfiProf != nil {
		fmt.Printf("fi-targets: %d\n", llfiProf.Count)
	}
	if trap != vm.TrapNone {
		fmt.Printf("trap detail: %s\n", m.TrapMsg)
		os.Exit(2)
	}
}

func imports(img *vm.Image, name string) bool {
	for _, h := range img.HostFns {
		if h == name {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxrun:", err)
	os.Exit(1)
}
