// Command fi-serve is the campaign daemon: a long-lived HTTP service that
// accepts campaign submissions (campaign.Spec-shaped JSON), executes each
// exactly once — identical submissions dedup by the spec's content key —
// and streams (index, TrialResult) events to every subscribed client as
// trials land. Reconnecting clients replay the delivered prefix and resume
// the live tail, so a torn connection never loses or duplicates a trial.
//
// Usage:
//
//	fi-serve [-listen :8714] [-shards 2] [-shard-nodes host:port,...]
//	         [-cache-dir DIR] [-journal DIR]
//
// Submissions co-schedule as tenants of one shared shard worker pool
// (-shards local re-exec'd workers, or -shard-nodes remote fi-campaign
// -shard-listen nodes); -shards 0 without nodes runs campaigns in-process.
// -cache-dir shares one content-addressed build cache across every tenant
// (and overrides whatever CacheDir clients put in their specs); -journal
// makes finished trials survive daemon restarts — a resubmitted campaign
// replays instead of re-executing.
//
// Submit with: fi-campaign -submit host:port [usual campaign flags].
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/serve"
	"repro/internal/shard"

	// Register the extension injectors so submissions may name them.
	_ "repro/internal/multibit"
	_ "repro/internal/opcodefi"
)

func main() {
	shard.MaybeWorker() // -shards re-execs this binary as its workers
	listen := flag.String("listen", ":8714", "HTTP listen address")
	shards := flag.Int("shards", 2, "size of the shared worker pool (re-exec'd worker processes; 0 = run campaigns in-process)")
	shardNodes := flag.String("shard-nodes", "", "comma-separated remote worker-node addresses (fi-campaign -shard-listen instances) to pool instead of local re-exec workers; -shards sizes the session count (0 = one per node)")
	cacheDir := flag.String("cache-dir", "", "shared content-addressed build/profile cache for all tenants (overrides client specs' CacheDir)")
	journalDir := flag.String("journal", "", "crash-safe trial journal; resubmitted campaigns replay recorded trials after a daemon restart")
	flag.Parse()

	cfg := serve.Config{CacheDir: *cacheDir}
	if *journalDir != "" {
		j, err := campaign.OpenJournal(*journalDir)
		if err != nil {
			fatal(err)
		}
		defer j.Close()
		cfg.Journal = j
	}
	var pool *shard.Pool
	var err error
	switch {
	case *shardNodes != "":
		pool, err = shard.NewTCPPool(*shards, splitNodes(*shardNodes))
	case *shards > 0:
		pool, err = shard.NewPool(*shards)
	}
	if err != nil {
		fatal(err)
	}
	if pool != nil {
		defer pool.Close()
		cfg.Pool = pool
	}

	s, err := serve.NewServer(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fi-serve: listening on %s (pool: %s)\n", *listen, poolDesc(pool))
	if err := http.ListenAndServe(*listen, s.Handler()); err != nil {
		fatal(err)
	}
}

func splitNodes(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func poolDesc(p *shard.Pool) string {
	if p == nil {
		return "in-process"
	}
	return fmt.Sprintf("%d workers", p.Workers())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fi-serve:", err)
	os.Exit(1)
}
