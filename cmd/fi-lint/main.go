// Command fi-lint runs the project's static-analysis suite (internal/lint):
// five analyzers encoding determinism and concurrency invariants that each
// map to a historical bug class in this repository — map-iteration order
// reaching build output (the LICM nondeterminism), wall-clock reads in
// determinism-critical packages, global math/rand state, callbacks invoked
// under a mutex (the collector re-entrancy deadlock), and gob wire-type
// field stability. See internal/lint/README.md for the invariant catalog.
//
// Usage:
//
//	fi-lint [-list] [packages]
//
// Packages default to ./... relative to the module root. Exits 1 when any
// diagnostic is reported, 2 on load errors — so `go run ./cmd/fi-lint ./...`
// is CI-gateable. It needs only the source tree: all type checking runs
// through the standard library's source importer.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, module, err := lint.FindModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader(root, module)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags := lint.Check(loader, pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fi-lint: %d violation(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fi-lint:", err)
	os.Exit(2)
}
