// Command fi-speed reproduces the paper's Figure 5 in isolation: campaign
// execution time per application for LLFI and REFINE, normalized to PINFI,
// plus the aggregate total (Figure 5o). It also reports the per-run
// breakdown (pre/post-detach costs for PINFI, instrumentation overhead for
// REFINE/LLFI) that explains the shape.
//
// Usage:
//
//	fi-speed [-trials 200] [-seed 1] [-workers 0] [-apps CSV] [-tools CSV]
//	         [-sched-workers 0] [-shards 0] [-cache-dir DIR] [-precision 0]
//	         [-cpuprofile out.pprof]
//
// -tools selects injectors from the registry (PINFI is always included — it
// is the normalization baseline). Campaigns run on one shared work-stealing
// executor by default (-sched-workers 0 = GOMAXPROCS, < 0 = serial);
// -shards N instead fans them across N re-exec'd worker processes sharing
// the -cache-dir; -cache-dir persists builds and golden profiles so
// repeated timing runs warm-start from disk. None of these affect the
// reported cycle counts — the Figure 5 numbers come from the deterministic
// cycle model, bit-identical for a fixed seed across schedulers, shard
// counts and cache states.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/pinfi"
	"repro/internal/shard"
	"repro/internal/workloads"

	// Register the multi-bit REFINE variant so -tools REFINE2 resolves,
	// and the opcode-corruption injectors for -tools OPCODE,OPCODE-VALID.
	_ "repro/internal/multibit"
	_ "repro/internal/opcodefi"
)

func main() {
	shard.MaybeWorker() // re-exec'd shard workers never reach flag parsing
	// All errors return through run so the deferred profile stop/flush runs
	// before exit — a partial profile of a failed suite is still useful.
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fi-speed:", err)
		os.Exit(1)
	}
}

func run() error {
	trials := flag.Int("trials", 200, "trials per (app, tool)")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	workers := flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS); with the shared scheduler active this caps the executor size")
	appsFlag := flag.String("apps", "", "comma-separated app subset")
	toolsFlag := flag.String("tools", "", "comma-separated tool subset from the injector registry\n(default: LLFI,REFINE,PINFI; registered: "+strings.Join(campaign.ToolNames(), ",")+")")
	schedWorkers := flag.Int("sched-workers", 0, "shared work-stealing executor size (0 = GOMAXPROCS, < 0 = serial per-campaign pools)")
	chunk := flag.Int("chunk", 0, "trial indexes claimed per executor lock acquisition (0 = adaptive); results are identical across chunk sizes")
	shards := flag.Int("shards", 0, "fan campaigns across N worker OS processes (this binary re-exec'd); results are bit-identical to in-process runs (0 = in-process)")
	shardWorker := flag.Bool("shard-worker", false, "run as a shard worker: gob job assignments on stdin, trial frames on stdout (what -shards re-execs; normally set via the environment)")
	cacheDir := flag.String("cache-dir", "", "persist built binaries + profiles under this directory (warm starts skip all builds)")
	journalDir := flag.String("journal", "", "append every completed trial to a crash-safe journal under this directory; a restarted run replays it and re-executes only missing trials")
	precision := flag.Float64("precision", 0, "adaptive trial allocation: stop each campaign once every outcome class's 95% Wilson-CI half-width is at or below this margin (0 = fixed -trials)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the suite run to this file")
	flag.Parse()
	if *shardWorker {
		return shard.WorkerMain(os.Stdin, os.Stdout)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.Config{
		Trials:    *trials,
		Seed:      *seed,
		Workers:   *workers,
		Chunk:     *chunk,
		Build:     campaign.DefaultBuildOptions(),
		Precision: *precision,
	}
	schedSize := *schedWorkers
	if *shards > 0 {
		schedSize = -1 // trials run in the workers; no in-process executor
	}
	ex, cache, err := experiments.ResolveExecution(schedSize, *workers, *cacheDir)
	if err != nil {
		return err
	}
	cfg.Sched, cfg.Cache = ex, cache
	var journal *campaign.Journal
	if *journalDir != "" {
		if journal, err = campaign.OpenJournal(*journalDir); err != nil {
			return err
		}
		defer journal.Close()
		cfg.Journal = journal
	}
	var pool *shard.Pool
	if *shards > 0 {
		if pool, err = shard.NewPool(*shards); err != nil {
			return err
		}
		defer pool.Close()
		cfg.Pool = pool
	}
	if *appsFlag != "" {
		for _, name := range strings.Split(*appsFlag, ",") {
			app, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			cfg.Apps = append(cfg.Apps, app)
		}
	}
	if *toolsFlag != "" {
		havePINFI := false
		for _, name := range strings.Split(*toolsFlag, ",") {
			tool, err := campaign.ToolByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			if tool.Name() == campaign.PINFI.Name() {
				havePINFI = true
			}
			cfg.Tools = append(cfg.Tools, tool)
		}
		if !havePINFI {
			// Figure 5 normalizes to PINFI; keep the baseline in the suite.
			cfg.Tools = append(cfg.Tools, campaign.PINFI)
		}
	}
	suite, err := experiments.RunSuite(cfg)
	if err != nil {
		return err
	}
	fmt.Println(experiments.CacheStatsLine(cache))
	if cache.Dir() != "" {
		fmt.Println(experiments.ComposeLine(cache))
	}
	if journal != nil {
		fmt.Println(experiments.JournalLine(journal))
	}
	if pool != nil {
		pool.Close() // drain the workers' final cache counters first
		fmt.Println(experiments.ShardLines(pool))
	} else {
		fmt.Println(experiments.ExecutionLine(cfg.Sched, cfg.Chunk))
	}
	fmt.Println(experiments.SpeedLine())
	fmt.Println()
	fmt.Println(suite.Figure5())

	paper := experiments.PaperFigure5()
	fmt.Println("Paper's published normalization for reference:")
	fmt.Printf("%-10s %8s %8s\n", "App", "LLFI", "REFINE")
	for _, app := range append(append([]string{}, suite.Order...), "Total") {
		if v, ok := paper[app]; ok {
			fmt.Printf("%-10s %8.1f %8.1f\n", app, v[0], v[1])
		}
	}

	costs := pinfi.DefaultCosts()
	fmt.Printf("\nCost model: PIN per-instr callback %d cycles, JIT %d cycles/static-instr, host call %d cycles.\n",
		costs.PerInstr, costs.JITPerStaticInstr, 30)
	return nil
}
