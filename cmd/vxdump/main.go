// Command vxdump disassembles a VX64 object file: instruction listing with
// fault-injection site annotations, function table, globals, and image
// statistics (instruction class mix, instrumentation fraction). It is the
// inspection companion to refinec, and the quickest way to see the
// codegen-interference effect: compare `refinec -app HPCCG -S` against
// `refinec -app HPCCG -tool llfi -S`.
//
// Usage:
//
//	vxdump prog.vxo [-stats]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/vx"
)

func main() {
	statsOnly := flag.Bool("stats", false, "print image statistics only")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: vxdump [flags] prog.vxo"))
	}
	blob, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := asm.DecodeObject(blob)
	if err != nil {
		fatal(err)
	}

	if !*statsOnly {
		fmt.Print(asm.Disasm(img))
		fmt.Println()
	}

	fmt.Printf("entry pc:      %d\n", img.EntryPC)
	fmt.Printf("instructions:  %d\n", len(img.Instrs))
	fmt.Printf("functions:     %d\n", len(img.Funcs))
	fmt.Printf("globals:       %d (%d data bytes)\n", len(img.GlobalAddrs), len(img.InitData))
	fmt.Printf("fi sites:      %d\n", img.NumSites)

	classCount := map[vx.Class]int{}
	instrumented := 0
	memOps := 0
	for i := range img.Instrs {
		in := &img.Instrs[i]
		classCount[in.Class]++
		if in.Instrumented {
			instrumented++
		}
		if in.AKind == 4 || in.BKind == 4 { // OpMem
			memOps++
		}
	}
	fmt.Printf("class mix:     arithm=%d mem=%d stack=%d ctl=%d\n",
		classCount[vx.ClassArith], classCount[vx.ClassMem], classCount[vx.ClassStack], classCount[vx.ClassCtl])
	fmt.Printf("mem operands:  %d\n", memOps)
	fmt.Printf("instrumented:  %d (%.1f%%)\n", instrumented, 100*float64(instrumented)/float64(len(img.Instrs)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxdump:", err)
	os.Exit(1)
}
