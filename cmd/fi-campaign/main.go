// Command fi-campaign runs the paper's full fault-injection evaluation:
// every benchmark × {LLFI, REFINE, PINFI} × n trials, then prints the
// regenerated Table 6, Figure 4, Table 4, Table 5 and Figure 5.
//
// Usage:
//
//	fi-campaign [-trials 1068] [-seed 1] [-workers 0] [-apps HPCCG,CG,...]
//	            [-tools LLFI,REFINE,PINFI,REFINE2,OPCODE] [-instrs all|arithm|mem|stack]
//	            [-O 2|0] [-sched-workers 0] [-shards 0] [-cache-dir DIR]
//	            [-precision 0.03] [-mutate app:func] [-quiet]
//
// The paper's configuration is the default: 1068 trials (3% margin, 95%
// confidence), -fi-funcs=* -fi-instrs=all, -O2. 14 apps × 3 tools × 1068 =
// 44,856 experiments, as in §5.3. -tools selects any subset of the injector
// registry, including extensions such as the REFINE2 double-bit-flip
// variant and the OPCODE corruption injectors; the statistical tables that
// need the PINFI baseline are skipped when it is not selected.
//
// All campaigns run on one work-stealing executor by default: every
// (app, tool) campaign is submitted up front, so builds and profiles of
// later campaigns overlap the trial tails of earlier ones and cores stay
// saturated across the whole suite. -sched-workers sizes the pool (0 =
// GOMAXPROCS); a negative value falls back to the serial one-campaign-at-a-
// time path. Either way results are bit-identical for a fixed seed.
//
// -cache-dir persists built binaries and golden profiles to disk,
// content-addressed by configuration and IR fingerprint: a second
// invocation with the same directory skips every build and profiling run
// (the trailing "cache:" line reports builds vs disk hits). The disk cache
// is compositional: per-function section entries let a warm run restore
// unchanged functions' trial outcomes and re-inject only changed sections
// (the "# compose:" line reports reused vs re-injected; -mutate app:func
// demonstrates the single-function-edit path). -precision M replaces the
// fixed trial count with sequential stopping at the first deterministic
// batch boundary where every outcome class's 95% Wilson-CI half-width
// fits M — bit-identical across all execution modes.
//
// -shards N fans every campaign out across N worker OS processes — this
// binary re-exec'd with -shard-worker semantics (a gob job stream on stdin,
// (index, TrialResult) frames on stdout) — scaling past GOMAXPROCS the way
// the paper's cluster campaigns do (§A.4). Results are bit-identical to an
// in-process run for any shard count; combine with -cache-dir so only the
// first worker per app×tool builds and warm reruns build nothing (the
// "# shard-cache:" line reports the cross-process totals).
//
// The same fan-out crosses machines: fi-campaign -shard-listen :7070 turns a
// process into a long-lived worker node, and a coordinator run with
// -shard-nodes host:port,... dials its workers there instead of re-execing
// locally — same wire protocol, same bit-identical results, and the same
// reassignment/retry machinery rides out dropped connections and dead nodes.
//
// -submit addr sends the whole suite to a running fi-serve daemon instead of
// executing locally: trial streams arrive over HTTP as they land, identical
// submissions dedup onto one execution server-side, and the client prints
// the same tables a local run would.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/opt"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/workloads"

	// Register the multi-bit REFINE variant so -tools REFINE2 resolves,
	// and the opcode-corruption injectors for -tools OPCODE,OPCODE-VALID.
	_ "repro/internal/multibit"
	_ "repro/internal/opcodefi"
)

func main() {
	shard.MaybeWorker() // re-exec'd shard workers never reach flag parsing
	trials := flag.Int("trials", 1068, "fault-injection samples per (app, tool)")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	workers := flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS); with the shared scheduler active this caps the executor size")
	appsFlag := flag.String("apps", "", "comma-separated app subset (default: all 14)")
	toolsFlag := flag.String("tools", "", "comma-separated tool subset from the injector registry\n(default: LLFI,REFINE,PINFI; registered: "+strings.Join(campaign.ToolNames(), ",")+")")
	instrs := flag.String("instrs", "all", "-fi-instrs class filter: all|arithm|mem|stack")
	optLevel := flag.Int("O", 2, "optimization level (2 or 0)")
	schedWorkers := flag.Int("sched-workers", 0, "shared work-stealing executor size (0 = GOMAXPROCS, < 0 = serial per-campaign pools)")
	chunk := flag.Int("chunk", 0, "trial indexes claimed per executor lock acquisition (0 = adaptive); results are identical across chunk sizes")
	shards := flag.Int("shards", 0, "fan campaigns across N worker OS processes (this binary re-exec'd); results are bit-identical to in-process runs, and -cache-dir is shared so only the first worker per app x tool builds (0 = in-process)")
	shardWorker := flag.Bool("shard-worker", false, "run as a shard worker: gob job assignments on stdin, trial frames on stdout (what -shards re-execs; normally set via the environment)")
	shardListen := flag.String("shard-listen", "", "run as a long-lived TCP worker node on this address (host:port; port 0 picks one) serving coordinator sessions until killed")
	shardNodes := flag.String("shard-nodes", "", "comma-separated worker-node addresses (-shard-listen instances) to dial instead of re-execing local workers; -shards sizes the session count (0 = one per node)")
	submit := flag.String("submit", "", "submit the suite to a running fi-serve daemon at this address (host:port) instead of executing locally; identical submissions dedup server-side")
	cacheDir := flag.String("cache-dir", "", "persist built binaries + profiles under this directory (warm starts skip all builds)")
	precision := flag.Float64("precision", 0, "adaptive trial allocation: stop each campaign once every outcome class's 95% Wilson-CI half-width is at or below this margin (0 = fixed -trials); the stop index is deterministic across execution modes")
	mutate := flag.String("mutate", "", "app:func — apply a dead single-function IR edit (DCE-erased, binary-identical) before running; with a warm -cache-dir the compositional cache re-injects only that function's section")
	journalDir := flag.String("journal", "", "append every completed trial to a crash-safe journal under this directory; a restarted run replays it and re-executes only missing trials")
	quiet := flag.Bool("quiet", false, "suppress per-campaign progress")
	flag.Parse()
	if *shardWorker {
		if err := shard.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *shardListen != "" {
		// Worker-node mode: serve coordinator sessions until killed.
		if err := shard.ListenAndServe(*shardListen, nil); err != nil {
			fatal(err)
		}
		return
	}

	cfg := experiments.Config{
		Trials:    *trials,
		Seed:      *seed,
		Workers:   *workers,
		Chunk:     *chunk,
		Build:     campaign.DefaultBuildOptions(),
		Precision: *precision,
	}
	schedSize := *schedWorkers
	if *shards > 0 || *shardNodes != "" || *submit != "" {
		schedSize = -1 // trials run in the workers (or the daemon); no in-process executor
	}
	ex, cache, err := experiments.ResolveExecution(schedSize, *workers, *cacheDir)
	if err != nil {
		fatal(err)
	}
	cfg.Sched, cfg.Cache = ex, cache
	var journal *campaign.Journal
	if *journalDir != "" {
		if journal, err = campaign.OpenJournal(*journalDir); err != nil {
			fatal(err)
		}
		defer journal.Close()
		cfg.Journal = journal
	}
	var pool *shard.Pool
	switch {
	case *shardNodes != "":
		// Remote worker nodes: -shards sizes the session count (0 = one per
		// node); everything downstream is the ordinary pool machinery.
		var nodes []string
		for _, n := range strings.Split(*shardNodes, ",") {
			if n = strings.TrimSpace(n); n != "" {
				nodes = append(nodes, n)
			}
		}
		if pool, err = shard.NewTCPPool(*shards, nodes); err != nil {
			fatal(err)
		}
	case *shards > 0:
		if pool, err = shard.NewPool(*shards); err != nil {
			fatal(err)
		}
	}
	if pool != nil {
		defer pool.Close()
		cfg.Pool = pool
	}
	classes, err := fault.ParseClasses(*instrs)
	if err != nil {
		fatal(err)
	}
	cfg.Build.FI.Classes = classes
	if *optLevel == 0 {
		cfg.Build.Opt = opt.O0
	}
	if *appsFlag != "" {
		for _, name := range strings.Split(*appsFlag, ",") {
			app, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			cfg.Apps = append(cfg.Apps, app)
		}
	}
	if *toolsFlag != "" {
		for _, name := range strings.Split(*toolsFlag, ",") {
			tool, err := campaign.ToolByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			cfg.Tools = append(cfg.Tools, tool)
		}
	}
	if *mutate != "" {
		if *shards > 0 || *shardNodes != "" || *submit != "" {
			// Shard workers and the fi-serve daemon re-resolve apps through
			// the registry by name, so a process-local mutated builder would
			// silently not ship.
			fatal(fmt.Errorf("-mutate is in-process only; drop -shards/-shard-nodes/-submit"))
		}
		name, fn, ok := strings.Cut(*mutate, ":")
		if !ok {
			fatal(fmt.Errorf("-mutate wants app:func, got %q", *mutate))
		}
		if cfg.Apps == nil {
			cfg.Apps = workloads.Registry()
		}
		found := false
		for i, app := range cfg.Apps {
			if app.Name != name {
				continue
			}
			mutated, err := workloads.MutateFunc(app, fn)
			if err != nil {
				fatal(err)
			}
			cfg.Apps[i] = mutated
			found = true
		}
		if !found {
			fatal(fmt.Errorf("-mutate app %q not in the selected apps", name))
		}
	}
	if !*quiet {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	if *submit != "" {
		start := time.Now()
		suite, err := submitSuite(*submit, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# %d apps x %d tools x %d trials = %d experiments in %v (executed by fi-serve %s)\n",
			len(suite.Order), len(suite.Tools), suite.Trials,
			len(suite.Order)*len(suite.Tools)*suite.Trials, time.Since(start).Round(time.Millisecond), *submit)
		fmt.Println()
		printTables(suite)
		return
	}

	start := time.Now()
	suite, err := experiments.RunSuite(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# %d apps x %d tools x %d trials = %d experiments in %v\n",
		len(suite.Order), len(suite.Tools), suite.Trials,
		len(suite.Order)*len(suite.Tools)*suite.Trials, time.Since(start).Round(time.Millisecond))
	fmt.Println(experiments.CacheStatsLine(cache))
	if cache.Dir() != "" {
		fmt.Println(experiments.ComposeLine(cache))
	}
	if journal != nil {
		fmt.Println(experiments.JournalLine(journal))
	}
	if pool != nil {
		pool.Close() // drain the workers' final cache counters first
		fmt.Println(experiments.ShardLines(pool))
	} else {
		fmt.Println(experiments.ExecutionLine(cfg.Sched, cfg.Chunk))
	}
	fmt.Println()

	printTables(suite)
}

// printTables renders the paper's outcome tables — shared by local execution
// and the -submit client, which reconstructs the suite from fi-serve streams
// (the tables read only Counts, Cycles and Trials, all of which travel).
func printTables(suite *experiments.Suite) {
	fmt.Println(suite.Table6())
	fmt.Println(suite.Figure4())

	hasPINFI := false
	hasLLFI := false
	for _, t := range suite.Tools {
		if t.Name() == campaign.PINFI.Name() {
			hasPINFI = true
		}
		if t.Name() == campaign.LLFI.Name() {
			hasLLFI = true
		}
	}
	if !hasPINFI || len(suite.Tools) < 2 {
		fmt.Println("(statistical comparisons skipped: they need PINFI plus at least one other tool)")
		return
	}

	if hasLLFI {
		fmt.Println(suite.Table4(suite.Order[0]))
	}
	t5, err := suite.Table5()
	if err != nil {
		fatal(err)
	}
	fmt.Println(t5)
	fmt.Println(suite.Figure5())

	sig, err := suite.SummaryCounts()
	if err != nil {
		fatal(err)
	}
	fmt.Print("Headline:")
	for _, t := range suite.Tools {
		if n, ok := sig[t.Name()]; ok {
			fmt.Printf(" %s differs from PINFI on %d/%d apps;", t.Name(), n, len(suite.Order))
		}
	}
	fmt.Println()
	fmt.Print("Campaign time vs PINFI:")
	for _, t := range suite.Tools {
		if t.Name() == campaign.PINFI.Name() {
			continue
		}
		fmt.Printf(" %s %.1fx", t.Name(), suite.NormalizedTime(t))
	}
	fmt.Println(" (paper: LLFI 3.9x, REFINE 1.2x).")
}

// submitSuite ships every app×tool campaign of the configuration to a
// running fi-serve daemon, concurrently — the daemon co-schedules them as
// tenants of its worker pool and dedups identical submissions across
// clients — and assembles the streamed summaries into the same Suite shape
// a local run produces (the tables read only Counts, Cycles and Trials).
func submitSuite(addr string, cfg experiments.Config) (*experiments.Suite, error) {
	apps := cfg.Apps
	if apps == nil {
		apps = workloads.Registry()
	}
	tools := cfg.Tools
	if tools == nil {
		tools = campaign.Tools
	}
	suite := &experiments.Suite{
		Trials:  cfg.Trials,
		Results: map[string]map[string]*campaign.Result{},
		Tools:   append([]campaign.Tool(nil), tools...),
	}
	for _, app := range apps {
		suite.Order = append(suite.Order, app.Name)
		suite.Results[app.Name] = map[string]*campaign.Result{}
	}
	client := &serve.Client{Addr: addr}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	for _, app := range apps {
		for _, tool := range tools {
			wg.Add(1)
			go func(app campaign.App, tool campaign.Tool) {
				defer wg.Done()
				// Derive the spec through campaign.New so defaulting (cost
				// model, trial range) matches a local run bit for bit.
				spec := campaign.New(app, tool,
					campaign.WithTrials(cfg.Trials),
					campaign.WithSeed(cfg.Seed),
					campaign.WithBuildOptions(cfg.Build),
				).Spec()
				sum, err := client.Run(context.Background(), spec, nil)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("submit %s/%s: %w", app.Name, tool.Name(), err)
					}
					return
				}
				suite.Results[app.Name][tool.Name()] = &campaign.Result{
					App: app.Name, Tool: tool,
					Counts: sum.Counts, Cycles: sum.Cycles, Trials: sum.Trials,
				}
			}(app, tool)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return suite, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fi-campaign:", err)
	os.Exit(1)
}
