// BENCH_trials.json emitter: a machine-readable snapshot of the numbers the
// perf trajectory tracks across PRs — the Figure 5 normalization, the Table 5
// verdict, raw VM throughput, and the profile/trial phase split that the
// fire-point trial path is supposed to move. The CI bench job runs this with
// BENCH_TRIALS_JSON set and uploads the file as a build artifact; without the
// env var the test skips, so the plain suite never pays the suite runs or the
// wall-clock measurement.
package refine_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	refine "repro"
	"repro/internal/campaign"
	"repro/internal/experiments"
)

// benchTrialsReport is the BENCH_trials.json schema. Field names are stable:
// downstream tooling diffs these files across commits.
type benchTrialsReport struct {
	// Fig5Speed: campaign cycle totals normalized to PINFI (paper: 3.9x
	// LLFI, 1.2x REFINE), full 14-app registry at the bench trial count.
	Fig5Speed struct {
		LLFIVsPINFI   float64 `json:"llfi_vs_pinfi"`
		REFINEVsPINFI float64 `json:"refine_vs_pinfi"`
		Trials        int     `json:"trials"`
	} `json:"fig5_speed"`
	// Table5: applications whose outcome distribution differs significantly
	// from PINFI's (paper: LLFI on all, REFINE on none), 6-app subset.
	Table5 struct {
		LLFISigApps   int `json:"llfi_sig_apps"`
		REFINESigApps int `json:"refine_sig_apps"`
		Apps          int `json:"apps"`
	} `json:"table5"`
	// VMThroughput: hook-free loop speed on the FT/PINFI binary — the
	// substrate cost every experiment pays (BenchmarkVMThroughput's metric).
	VMThroughput struct {
		InstrPerSec float64 `json:"instr_per_sec"`
	} `json:"vm_throughput"`
	// Phases: cumulative campaign-phase throughput over everything this
	// process ran (the two suites above), from campaign.ReadPhaseStats.
	// trial_instr_per_sec is the fire-point headline number: trials run
	// hook-free, so it should sit near VMThroughput rather than near the
	// hooked profile rate.
	Phases struct {
		ProfileInstrPerSec float64 `json:"profile_instr_per_sec"`
		TrialInstrPerSec   float64 `json:"trial_instr_per_sec"`
		ProfileInstrs      int64   `json:"profile_instrs"`
		TrialInstrs        int64   `json:"trial_instrs"`
	} `json:"phases"`
}

// TestEmitBenchTrials writes BENCH_trials.json to $BENCH_TRIALS_JSON. It is
// a test rather than a benchmark so the CI step can run it with -run and a
// stable exit code, and reuse the suite plumbing without b.N scaling.
func TestEmitBenchTrials(t *testing.T) {
	path := os.Getenv("BENCH_TRIALS_JSON")
	if path == "" {
		t.Skip("set BENCH_TRIALS_JSON=<path> to emit the benchmark summary (the dedicated CI step does)")
	}

	var report benchTrialsReport

	// Fig5Speed over the full registry. The shared cache keeps the Table 5
	// run below from rebuilding the overlapping six apps.
	cache := campaign.NewCache()
	apps := refine.Apps()
	const trials = 80 // matches bench_test.go's reduced bench campaigns
	suite, err := experiments.RunSuite(experiments.Config{
		Apps: apps, Trials: trials, Seed: 1, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, r := suite.Speedups()
	report.Fig5Speed.LLFIVsPINFI = l
	report.Fig5Speed.REFINEVsPINFI = r
	report.Fig5Speed.Trials = trials

	t5apps := apps[:6]
	t5, err := experiments.RunSuite(experiments.Config{
		Apps: t5apps, Trials: 150, Seed: 1, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := t5.SummaryCounts()
	if err != nil {
		t.Fatal(err)
	}
	report.Table5.LLFISigApps = sig["LLFI"]
	report.Table5.REFINESigApps = sig["REFINE"]
	report.Table5.Apps = len(t5apps)

	// Raw hook-free throughput, measured like BenchmarkVMThroughput but with
	// a fixed iteration count.
	app, err := refine.AppByName("FT")
	if err != nil {
		t.Fatal(err)
	}
	bin, err := refine.Build(app, refine.PINFI, refine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := bin.NewMachine()
	var instrs int64
	start := time.Now()
	for i := 0; i < 5; i++ {
		m.Reset()
		m.Run()
		instrs += m.InstrCount
	}
	report.VMThroughput.InstrPerSec = float64(instrs) / time.Since(start).Seconds()

	ps := campaign.ReadPhaseStats()
	report.Phases.ProfileInstrPerSec, report.Phases.TrialInstrPerSec = ps.InstrsPerSec()
	report.Phases.ProfileInstrs = ps.ProfileInstrs
	report.Phases.TrialInstrs = ps.TrialInstrs

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, data)
}
