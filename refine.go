// Package refine is the public API of the REFINE reproduction: realistic
// fault injection via compiler-based instrumentation (Georgakoudis, Laguna,
// Nikolopoulos, Schulz — SC'17), rebuilt as a self-contained Go system.
//
// The package re-exports the high-level workflow:
//
//	app, _  := refine.AppByName("HPCCG")
//	bin, _  := refine.Build(app, refine.REFINE, refine.DefaultOptions())
//	prof, _ := refine.ProfileRun(bin)
//	trial   := refine.Trial(bin, prof, seed)
//	res, _  := refine.NewCampaign(app, refine.REFINE,
//	        refine.WithTrials(1068), refine.WithSeed(seed)).Run(ctx)
//
// Fault-injection tools are pluggable Injector values resolved through a
// registry (ToolByName, Registered); the paper's three tools plus the
// REFINE2 double-bit-flip variant are pre-registered. Campaigns stream
// results through WithObserver or buffer them with WithRecords, and cancel
// cleanly through the context.
//
// Substrates live in internal packages: the SSA IR and optimizer
// (internal/ir, internal/opt), the VX64 backend (internal/codegen,
// internal/mir, internal/vx), the assembler and virtual machine
// (internal/asm, internal/vm), the REFINE pass and runtime (internal/core),
// the LLFI and PINFI comparators (internal/llfi, internal/pinfi), the
// multi-bit variant (internal/multibit), the fault model (internal/fault),
// campaign orchestration (internal/campaign), statistics (internal/stats),
// and the 14 benchmark kernels (internal/workloads).
package refine

import (
	"context"

	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/multibit"
	"repro/internal/opcodefi"
	"repro/internal/pinfi"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Tool is a pluggable fault-injection tool (the campaign.Injector
// interface). The built-in tools below are registered singletons; new tools
// register through campaign.Register and resolve by name with ToolByName.
type Tool = campaign.Tool

// Injector is the pluggable tool interface; implement it and pass the value
// to campaign.Register to add a fault model without touching the
// orchestrator (internal/multibit is the worked example).
type Injector = campaign.Injector

// Built-in tools, in the paper's presentation order, plus the multi-bit
// extension.
var (
	LLFI   = campaign.LLFI
	REFINE = campaign.REFINE
	PINFI  = campaign.PINFI
	// REFINE2 is the double bit-flip REFINE variant: two single-bit faults
	// at consecutive dynamic target instructions.
	REFINE2 = multibit.Injector
	// OPCODE is the opcode-corruption injector (§4.5 "future work"
	// semantics): a persistent bit flip in the target instruction's opcode
	// byte, invalid encodings allowed. Trials mutate private image clones,
	// so OPCODE campaigns share cached binaries like every other tool.
	OPCODE = opcodefi.Injector
	// OPCODEVALID is OPCODE restricted to valid opcodes — the published
	// REFINE's compiler-emission restriction.
	OPCODEVALID = opcodefi.ValidInjector
)

// Tools lists the paper's three tools.
var Tools = campaign.Tools

// Registered returns every registered tool (built-ins and extensions) in
// registration order.
func Registered() []Tool { return campaign.RegisteredTools() }

// ToolByName resolves a registered tool by its stable name (e.g. "REFINE",
// "PINFI", "REFINE2").
func ToolByName(name string) (Tool, error) { return campaign.ToolByName(name) }

// App is a benchmark program buildable to IR.
type App = campaign.App

// Binary is a compiled, instrumented (or plain, for PINFI) executable image.
type Binary = campaign.Binary

// Profile carries the profiling-step results: dynamic target population,
// golden output, timeout budget.
type Profile = campaign.Profile

// TrialResult is one fault-injection run's outcome.
type TrialResult = campaign.TrialResult

// Result aggregates a campaign.
type Result = campaign.Result

// Options configure the build pipeline (optimization level, -fi-funcs,
// -fi-instrs).
type Options = campaign.BuildOptions

// Outcome is the crash/SOC/benign classification.
type Outcome = fault.Outcome

// Outcome constants. HarnessFault is not a fault-model outcome: it marks a
// trial whose execution harness failed deterministically (e.g. a shard
// worker that crashed on every retry), so campaign tables can report the
// infrastructure failure instead of silently dropping or mislabeling the
// trial.
const (
	Benign       = fault.Benign
	Crash        = fault.Crash
	SOC          = fault.SOC
	HarnessFault = fault.HarnessFault
)

// Counts aggregates outcome frequencies.
type Counts = fault.Counts

// Apps returns the 14 benchmark applications of the paper's Table 3.
func Apps() []App { return workloads.Registry() }

// AppByName looks up a benchmark by name (e.g. "HPCCG", "lulesh", "BT").
func AppByName(name string) (App, error) { return workloads.ByName(name) }

// DefaultOptions is the paper's evaluation configuration:
// -O2, -fi=true -fi-funcs=* -fi-instrs=all.
func DefaultOptions() Options { return campaign.DefaultBuildOptions() }

// Build compiles an application under the given tool's pipeline.
func Build(app App, tool Tool, o Options) (*Binary, error) {
	return campaign.BuildBinary(app, tool, o)
}

// ProfileRun executes the profiling step (golden output + dynamic counts).
func ProfileRun(bin *Binary) (*Profile, error) {
	return bin.RunProfile(pinfi.DefaultCosts())
}

// Trial executes one fault-injection experiment with the given seed.
func Trial(bin *Binary, prof *Profile, seed uint64) TrialResult {
	return bin.RunTrial(prof, pinfi.DefaultCosts(), seed)
}

// CampaignSpec is a configured campaign; build one with NewCampaign and
// execute with Run(ctx).
type CampaignSpec = campaign.Campaign

// CampaignOption configures a campaign (functional options).
type CampaignOption = campaign.Option

// Functional options for NewCampaign (see the campaign package for full
// semantics).
var (
	// WithTrials sets the trial count (default: the paper's 1068).
	WithTrials = campaign.WithTrials
	// WithSeed sets the base RNG seed (default 1).
	WithSeed = campaign.WithSeed
	// WithWorkers sets the parallel trial workers (default GOMAXPROCS).
	WithWorkers = campaign.WithWorkers
	// WithOptions sets the build pipeline configuration.
	WithOptions = campaign.WithBuildOptions
	// WithCache selects the build/profile cache; nil forces a fresh build.
	WithCache = campaign.WithCache
	// WithObserver streams trial results in trial order as the campaign
	// runs — million-trial campaigns need no Records buffer.
	WithObserver = campaign.WithObserver
	// WithRecords buffers every TrialResult in Result.Records.
	WithRecords = campaign.WithRecords
	// WithChunk sets how many trial indexes a scheduled campaign claims
	// per executor lock acquisition (0 = adaptive); results are
	// bit-identical across chunk sizes.
	WithChunk = campaign.WithChunk
	// WithExecutor schedules the campaign on a shared work-stealing
	// executor (see NewExecutor/SharedExecutor) instead of a private pool;
	// concurrent campaigns interleave at trial granularity with
	// bit-identical results.
	WithExecutor = campaign.WithExecutor
	// WithShards fans the campaign across N worker OS processes (this
	// binary re-exec'd; see ShardPool) with bit-identical results for any
	// shard count. Requires a registry app (AppByName).
	WithShards = campaign.WithShards
	// WithTrialRange restricts the campaign to trial indexes [lo, hi)
	// while keeping absolute per-trial seeds — the sharding substrate,
	// usable directly for manual work splitting.
	WithTrialRange = campaign.WithTrialRange
	// WithJournal appends every completed trial to a crash-safe journal
	// (see OpenJournal); a restarted campaign with the same journal replays
	// recorded trials and re-executes only the missing indexes,
	// bit-identically.
	WithJournal = campaign.WithJournal
)

// ErrBuildUnclaimed is returned (wrapped) by scheduled campaigns whose
// build+profile unit was abandoned before any executor worker claimed it
// while the context reports no error; match with errors.Is.
var ErrBuildUnclaimed = campaign.ErrBuildUnclaimed

// ErrShardsUnavailable wraps shard-pool construction failures (no worker
// process could be spawned); campaign.Run falls back to in-process
// execution when its shard hook reports it. Match with errors.Is.
var ErrShardsUnavailable = campaign.ErrShardsUnavailable

// Journal is a crash-safe, append-only record of completed trials: gob
// frames in rotated segments, fsynced, torn-tail tolerant. One journal
// serves many campaigns — entries are keyed by each campaign's
// configuration fingerprint — and a process restarted onto the same
// directory replays recorded trials instead of re-executing them.
type Journal = campaign.Journal

// JournalStats are a journal's replay/append counters.
type JournalStats = campaign.JournalStats

// OpenJournal opens (or creates) the trial journal rooted at dir, loading
// every complete entry from existing segments; pass it to campaigns with
// WithJournal.
func OpenJournal(dir string) (*Journal, error) { return campaign.OpenJournal(dir) }

// ShardPool is a set of live worker processes that campaigns fan out over:
// this binary re-exec'd, driven over stdio with gob frames, sharing one
// content-addressed disk cache. One pool can run many campaigns (a suite)
// before Close. See internal/shard for the wire protocol and the
// determinism, cache-sharing and cancellation contracts.
type ShardPool = shard.Pool

// NewShardPool spawns n shard worker processes. The embedding binary must
// call MaybeShardWorker first thing in main (the fi-* drivers do).
func NewShardPool(n int) (*ShardPool, error) { return shard.NewPool(n) }

// MaybeShardWorker turns this process into a shard worker when it was
// re-exec'd by a ShardPool (no-op otherwise). Call it before flag parsing
// in any main — or in TestMain of any test binary — that creates pools.
func MaybeShardWorker() { shard.MaybeWorker() }

// Executor is the process-wide work-stealing trial executor: one pool that
// treats every build, profile and trial of every campaign as a claimable
// unit of work, keeping cores saturated across a whole suite.
type Executor = sched.Executor

// NewExecutor creates an executor with the given worker count (<= 0 means
// GOMAXPROCS). Close it when done.
func NewExecutor(workers int) *Executor { return sched.New(workers) }

// SharedExecutor returns the process-wide executor used by the fi-* drivers
// (GOMAXPROCS workers, never closed).
func SharedExecutor() *Executor { return sched.Default() }

// Cache memoizes builds and golden profiles; see NewBuildCache and
// NewDiskCache.
type Cache = campaign.Cache

// CacheStats are a cache's hit/build counters.
type CacheStats = campaign.CacheStats

// NewBuildCache returns an empty in-memory build/profile cache (campaigns
// use the process-wide default unless WithCache overrides it).
func NewBuildCache() *Cache { return campaign.NewCache() }

// NewDiskCache returns a build/profile cache persisted under dir: entries
// are content-addressed by configuration and IR fingerprint, so a later
// process warm-starts past every build and golden profile. Stats() reports
// builds vs memory vs disk hits.
func NewDiskCache(dir string) (*Cache, error) { return campaign.NewDiskCache(dir) }

// NewCampaign specifies a campaign over (app, tool); run it with
// .Run(ctx). Builds and golden-run profiles are memoized process-wide by
// default, keyed by the app's name, memory size, tool and build options —
// repeated campaigns over the same configuration compile and profile once.
// Apps are identified by name: two Apps sharing a name but building
// different IR would collide in the cache; use distinct names, or
// WithCache(nil) to bypass caching.
func NewCampaign(app App, tool Tool, opts ...CampaignOption) *CampaignSpec {
	return campaign.New(app, tool, opts...)
}

// Campaign runs n trials of (app, tool) across workers goroutines
// (workers ≤ 0 uses GOMAXPROCS) with the default build options and the
// process-wide cache, buffering all Records.
//
// Deprecated: use NewCampaign(app, tool, opts...).Run(ctx).
func Campaign(app App, tool Tool, n int, seed uint64, workers int) (*Result, error) {
	return campaign.New(app, tool,
		campaign.WithTrials(n), campaign.WithSeed(seed), campaign.WithWorkers(workers),
		campaign.WithBuildOptions(DefaultOptions()), campaign.WithRecords(),
	).Run(context.Background())
}

// CampaignWith runs a campaign with explicit build options (ablations).
// It shares the process-wide build/profile cache (see Campaign).
//
// Deprecated: use NewCampaign with WithOptions.
func CampaignWith(app App, tool Tool, n int, seed uint64, workers int, o Options) (*Result, error) {
	return campaign.New(app, tool,
		campaign.WithTrials(n), campaign.WithSeed(seed), campaign.WithWorkers(workers),
		campaign.WithBuildOptions(o), campaign.WithRecords(),
	).Run(context.Background())
}

// CampaignFresh runs a campaign with a from-scratch build and profile,
// bypassing the process-wide cache — for apps whose Build closures change
// between runs while keeping the same name.
//
// Deprecated: use NewCampaign with WithCache(nil).
func CampaignFresh(app App, tool Tool, n int, seed uint64, workers int, o Options) (*Result, error) {
	return campaign.New(app, tool,
		campaign.WithTrials(n), campaign.WithSeed(seed), campaign.WithWorkers(workers),
		campaign.WithBuildOptions(o), campaign.WithCache(nil), campaign.WithRecords(),
	).Run(context.Background())
}

// SampleSize computes the Leveugle et al. sample count; the paper's margin
// (3%) and confidence (95%) over a large population give 1068.
func SampleSize(population int64, marginOfError, z float64) int {
	return stats.SampleSize(population, marginOfError, z)
}

// PaperTrials is the per-configuration trial count of the paper (§5.3).
var PaperTrials = stats.SampleSize(1<<40, 0.03, stats.Z95)

// ChiSquaredCompare tests whether two tools' outcome counts differ
// significantly (α = 0.05), as in the paper's Table 5.
func ChiSquaredCompare(app, baseTool, cmpTool string, base, cmp Counts) (stats.TestResult, error) {
	return stats.CompareCounts(app, baseTool, cmpTool,
		[3]int64{int64(base.Crash), int64(base.SOC), int64(base.Benign)},
		[3]int64{int64(cmp.Crash), int64(cmp.SOC), int64(cmp.Benign)})
}

// WilsonCI returns the 95% confidence interval for k/n, used for the
// Figure 4 error bars.
func WilsonCI(k, n int) (lo, hi float64) {
	return stats.WilsonCI(k, n, stats.Z95)
}

// NewModule and Builder re-exports allow custom workloads against the
// public API (see examples/custom-workload).
func NewModule(name string) *ir.Module { return ir.NewModule(name) }

// NewBuilder returns an IR builder over a module.
func NewBuilder(m *ir.Module) *ir.Builder { return ir.NewBuilder(m) }
