// Package refine is the public API of the REFINE reproduction: realistic
// fault injection via compiler-based instrumentation (Georgakoudis, Laguna,
// Nikolopoulos, Schulz — SC'17), rebuilt as a self-contained Go system.
//
// The package re-exports the high-level workflow:
//
//	app, _  := refine.AppByName("HPCCG")
//	bin, _  := refine.Build(app, refine.REFINE, refine.DefaultOptions())
//	prof, _ := refine.ProfileRun(bin)
//	trial   := refine.Trial(bin, prof, seed)
//	res, _  := refine.Campaign(app, refine.REFINE, 1068, seed, 0)
//
// Substrates live in internal packages: the SSA IR and optimizer
// (internal/ir, internal/opt), the VX64 backend (internal/codegen,
// internal/mir, internal/vx), the assembler and virtual machine
// (internal/asm, internal/vm), the REFINE pass and runtime (internal/core),
// the LLFI and PINFI comparators (internal/llfi, internal/pinfi), the fault
// model (internal/fault), campaign orchestration (internal/campaign),
// statistics (internal/stats), and the 14 benchmark kernels
// (internal/workloads).
package refine

import (
	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/pinfi"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Tool identifies one of the three fault-injection tools.
type Tool = campaign.Tool

// Tool constants, in the paper's presentation order.
const (
	LLFI   = campaign.LLFI
	REFINE = campaign.REFINE
	PINFI  = campaign.PINFI
)

// Tools lists all three tools.
var Tools = campaign.Tools

// App is a benchmark program buildable to IR.
type App = campaign.App

// Binary is a compiled, instrumented (or plain, for PINFI) executable image.
type Binary = campaign.Binary

// Profile carries the profiling-step results: dynamic target population,
// golden output, timeout budget.
type Profile = campaign.Profile

// TrialResult is one fault-injection run's outcome.
type TrialResult = campaign.TrialResult

// Result aggregates a campaign.
type Result = campaign.Result

// Options configure the build pipeline (optimization level, -fi-funcs,
// -fi-instrs).
type Options = campaign.BuildOptions

// Outcome is the crash/SOC/benign classification.
type Outcome = fault.Outcome

// Outcome constants.
const (
	Benign = fault.Benign
	Crash  = fault.Crash
	SOC    = fault.SOC
)

// Counts aggregates outcome frequencies.
type Counts = fault.Counts

// Apps returns the 14 benchmark applications of the paper's Table 3.
func Apps() []App { return workloads.Registry() }

// AppByName looks up a benchmark by name (e.g. "HPCCG", "lulesh", "BT").
func AppByName(name string) (App, error) { return workloads.ByName(name) }

// DefaultOptions is the paper's evaluation configuration:
// -O2, -fi=true -fi-funcs=* -fi-instrs=all.
func DefaultOptions() Options { return campaign.DefaultBuildOptions() }

// Build compiles an application under the given tool's pipeline.
func Build(app App, tool Tool, o Options) (*Binary, error) {
	return campaign.BuildBinary(app, tool, o)
}

// ProfileRun executes the profiling step (golden output + dynamic counts).
func ProfileRun(bin *Binary) (*Profile, error) {
	return bin.RunProfile(pinfi.DefaultCosts())
}

// Trial executes one fault-injection experiment with the given seed.
func Trial(bin *Binary, prof *Profile, seed uint64) TrialResult {
	return bin.RunTrial(prof, pinfi.DefaultCosts(), seed)
}

// Campaign runs n trials of (app, tool) across workers goroutines
// (workers ≤ 0 uses GOMAXPROCS) with the default build options. Builds and
// golden-run profiles are memoized process-wide, keyed by the app's name,
// memory size, tool and build options — repeated campaigns over the same
// configuration compile and profile once. Apps are identified by name: two
// Apps sharing a name but building different IR would collide in the cache;
// use distinct names, or CampaignFresh to bypass caching.
func Campaign(app App, tool Tool, n int, seed uint64, workers int) (*Result, error) {
	return campaign.Run(app, tool, n, seed, workers, DefaultOptions())
}

// CampaignWith runs a campaign with explicit build options (ablations).
// It shares the process-wide build/profile cache (see Campaign).
func CampaignWith(app App, tool Tool, n int, seed uint64, workers int, o Options) (*Result, error) {
	return campaign.Run(app, tool, n, seed, workers, o)
}

// CampaignFresh runs a campaign with a from-scratch build and profile,
// bypassing the process-wide cache — for apps whose Build closures change
// between runs while keeping the same name.
func CampaignFresh(app App, tool Tool, n int, seed uint64, workers int, o Options) (*Result, error) {
	return campaign.RunCached(nil, app, tool, n, seed, workers, o)
}

// SampleSize computes the Leveugle et al. sample count; the paper's margin
// (3%) and confidence (95%) over a large population give 1068.
func SampleSize(population int64, marginOfError, z float64) int {
	return stats.SampleSize(population, marginOfError, z)
}

// PaperTrials is the per-configuration trial count of the paper (§5.3).
var PaperTrials = stats.SampleSize(1<<40, 0.03, stats.Z95)

// ChiSquaredCompare tests whether two tools' outcome counts differ
// significantly (α = 0.05), as in the paper's Table 5.
func ChiSquaredCompare(app, baseTool, cmpTool string, base, cmp Counts) (stats.TestResult, error) {
	return stats.CompareCounts(app, baseTool, cmpTool,
		[3]int64{int64(base.Crash), int64(base.SOC), int64(base.Benign)},
		[3]int64{int64(cmp.Crash), int64(cmp.SOC), int64(cmp.Benign)})
}

// WilsonCI returns the 95% confidence interval for k/n, used for the
// Figure 4 error bars.
func WilsonCI(k, n int) (lo, hi float64) {
	return stats.WilsonCI(k, n, stats.Z95)
}

// NewModule and Builder re-exports allow custom workloads against the
// public API (see examples/custom-workload).
func NewModule(name string) *ir.Module { return ir.NewModule(name) }

// NewBuilder returns an IR builder over a module.
func NewBuilder(m *ir.Module) *ir.Builder { return ir.NewBuilder(m) }
