// BENCH_compose.json emitter and the warm-edit benchmark: the numbers the
// compositional cache is supposed to move. A single-function edit on a warm
// cache should cost a small fraction of a cold campaign (only the edited
// section's trials re-execute), and adaptive precision stopping should cut
// trial counts below the fixed budget. The CI compose-smoke job runs the
// emitter with BENCH_COMPOSE_JSON set and uploads the file as a build
// artifact; without the env var the test skips.
package refine_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/workloads"
)

const (
	composeBenchApp    = "CG"
	composeBenchFunc   = "norm"
	composeBenchTrials = 200
)

// composeColdRun populates dir with CG×REFINE build, profile and section
// entries and returns the elapsed wall clock.
func composeColdRun(tb testing.TB, dir string) time.Duration {
	tb.Helper()
	cache, err := campaign.NewDiskCache(dir)
	if err != nil {
		tb.Fatal(err)
	}
	app, err := workloads.ByName(composeBenchApp)
	if err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	if _, err := campaign.New(app, campaign.REFINE,
		campaign.WithTrials(composeBenchTrials), campaign.WithSeed(1),
		campaign.WithBuildOptions(campaign.DefaultBuildOptions()),
		campaign.WithCache(cache), campaign.WithRecords(),
	).Run(context.Background()); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start)
}

// composeWarmEdit runs the mutated app over the warm dir through a fresh
// Cache (so every reuse is a disk restore) and returns the elapsed wall
// clock and the compose counters.
func composeWarmEdit(tb testing.TB, dir string) (time.Duration, campaign.ComposeStats) {
	tb.Helper()
	cache, err := campaign.NewDiskCache(dir)
	if err != nil {
		tb.Fatal(err)
	}
	app, err := workloads.ByName(composeBenchApp)
	if err != nil {
		tb.Fatal(err)
	}
	mutated, err := workloads.MutateFunc(app, composeBenchFunc)
	if err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	if _, err := campaign.New(mutated, campaign.REFINE,
		campaign.WithTrials(composeBenchTrials), campaign.WithSeed(1),
		campaign.WithBuildOptions(campaign.DefaultBuildOptions()),
		campaign.WithCache(cache), campaign.WithRecords(),
	).Run(context.Background()); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start), cache.Compose()
}

// sectionSnapshot returns the set of .fis entries currently under dir.
func sectionSnapshot(tb testing.TB, dir string) map[string]bool {
	tb.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.fis"))
	if err != nil {
		tb.Fatal(err)
	}
	out := make(map[string]bool, len(names))
	for _, n := range names {
		out[n] = true
	}
	return out
}

// BenchmarkSingleFunctionEditWarm measures the steady-state cost of a warm
// campaign after a single-function edit: compose-restore the unchanged
// sections from disk, re-execute only the edited function's and the
// program-level section's trials, and store the new entries. Entries the
// iteration stored are removed between iterations so every iteration pays
// the genuine post-edit cost rather than a full restore.
func BenchmarkSingleFunctionEditWarm(b *testing.B) {
	dir := b.TempDir()
	composeColdRun(b, dir)
	base := sectionSnapshot(b, dir)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		composeWarmEdit(b, dir)
		b.StopTimer()
		for name := range sectionSnapshot(b, dir) {
			if !base[name] {
				if err := os.Remove(name); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StartTimer()
	}
}

// benchComposeReport is the BENCH_compose.json schema. Field names are
// stable: downstream tooling diffs these files across commits.
type benchComposeReport struct {
	WarmEdit struct {
		App              string  `json:"app"`
		Func             string  `json:"func"`
		Tool             string  `json:"tool"`
		Trials           int     `json:"trials"`
		ColdMs           float64 `json:"cold_ms"`
		WarmEditMs       float64 `json:"warm_edit_ms"`
		Sections         uint64  `json:"sections"`
		Reused           uint64  `json:"reused"`
		Reinjected       uint64  `json:"reinjected"`
		TrialsReused     uint64  `json:"trials_reused"`
		TrialsReinjected uint64  `json:"trials_reinjected"`
	} `json:"warm_edit"`
	Precision struct {
		Margin           float64 `json:"margin"`
		ConfiguredTrials int     `json:"configured_trials"`
		StoppedAt        int     `json:"stopped_at"`
	} `json:"precision"`
}

// TestEmitBenchCompose writes BENCH_compose.json to $BENCH_COMPOSE_JSON: one
// timed cold campaign, one timed warm-after-edit campaign over the same
// cache, and the precision-stopped trial count for the same cell.
func TestEmitBenchCompose(t *testing.T) {
	path := os.Getenv("BENCH_COMPOSE_JSON")
	if path == "" {
		t.Skip("set BENCH_COMPOSE_JSON=<path> to emit the compose benchmark summary (the dedicated CI step does)")
	}

	var report benchComposeReport
	dir := t.TempDir()
	cold := composeColdRun(t, dir)
	warm, stats := composeWarmEdit(t, dir)
	report.WarmEdit.App = composeBenchApp
	report.WarmEdit.Func = composeBenchFunc
	report.WarmEdit.Tool = campaign.REFINE.Name()
	report.WarmEdit.Trials = composeBenchTrials
	report.WarmEdit.ColdMs = float64(cold.Microseconds()) / 1e3
	report.WarmEdit.WarmEditMs = float64(warm.Microseconds()) / 1e3
	report.WarmEdit.Sections = stats.Sections
	report.WarmEdit.Reused = stats.Reused
	report.WarmEdit.Reinjected = stats.Reinjected
	report.WarmEdit.TrialsReused = stats.TrialsReused
	report.WarmEdit.TrialsReinjected = stats.TrialsReinjected

	app, err := workloads.ByName(composeBenchApp)
	if err != nil {
		t.Fatal(err)
	}
	const margin = 0.1
	res, err := campaign.New(app, campaign.REFINE,
		campaign.WithTrials(composeBenchTrials), campaign.WithSeed(1),
		campaign.WithBuildOptions(campaign.DefaultBuildOptions()),
		campaign.WithPrecision(margin, 0)).Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	report.Precision.Margin = margin
	report.Precision.ConfiguredTrials = composeBenchTrials
	report.Precision.StoppedAt = res.Trials

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, data)
}
